"""Buffers and the output discipline of Sections 3.3 and 4.3.

Every potential result sits in a buffer until the predicates that govern
it resolve.  The paper gives four buffer operations — ``enqueue``,
``clear``, ``flush``, ``upload`` — and one output rule for the
nondeterministic engine: an item is *marked* "output" as soon as one
match satisfies the query, but it is only *sent* when it reaches the
head of the queue.  Cleared items are removed immediately.  Together
these guarantee (a) no duplicates, (b) document order, and (c) the
memory bound: only items whose membership is still undetermined are
retained.

:class:`OutputQueue` implements that discipline as one global intrusive
doubly-linked FIFO (O(1) enqueue, unlink, and head advance).  Each
:class:`BufferItem` also records the id of the BPDT buffer that
logically owns it; ``upload`` moves ownership up the HPDT tree without
copying, and a :class:`BufferTrace` can record every operation so tests
can check the paper's worked examples step by step.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

#: Item lifecycle states.
PENDING = "pending"
OUTPUT = "output"   # some embedding satisfied every predicate
DEAD = "dead"       # every embedding falsified some predicate
SENT = "sent"       # already handed to the sink


class BufferItem:
    """One buffered potential result.

    ``value`` may be finalized after creation (catchall elements are
    complete only at their end event); ``value_ready`` gates emission.
    ``chains`` is managed by the matcher: the number of still-live
    embeddings.  ``owner`` is the ``(level, k)`` id of the BPDT buffer
    currently holding the item.
    """

    __slots__ = ("value", "seq", "state", "value_ready", "live_chains",
                 "owner", "prev", "next", "on_emit")

    def __init__(self, value: Optional[str], seq: int,
                 owner: Tuple[int, int], value_ready: bool = True,
                 on_emit: Optional[Callable[["BufferItem"], None]] = None):
        self.value = value
        self.seq = seq
        self.state = PENDING
        self.value_ready = value_ready
        self.live_chains = 0
        self.owner = owner
        self.prev: Optional["BufferItem"] = None
        self.next: Optional["BufferItem"] = None
        self.on_emit = on_emit

    def __repr__(self):
        return "<BufferItem #%d %s owner=%r %r>" % (
            self.seq, self.state, self.owner,
            (self.value or "")[:30])


class BufferTrace:
    """Optional recorder of buffer operations for example-level tests.

    Records tuples ``(op, bpdt_id, value, depth_vector)`` where ``op``
    is one of ``enqueue``/``upload``/``flush``/``clear``/``send``.

    ``item_seq`` identifies the buffered item the operation touched;
    this base recorder ignores it (keeping the historical 4-tuples), but
    :class:`repro.obs.events.EventTrace` — the general execution trace —
    overrides :meth:`record` and uses it to reconstruct and replay each
    item's journey through the BPDT buffers.
    """

    def __init__(self):
        self.operations: List[Tuple[str, Tuple[int, int], Optional[str], tuple]] = []

    def record(self, op: str, bpdt_id: Tuple[int, int],
               value: Optional[str], depth_vector: tuple = (),
               item_seq: Optional[int] = None) -> None:
        self.operations.append((op, bpdt_id, value, depth_vector))

    def ops(self, op: Optional[str] = None) -> List[tuple]:
        if op is None:
            return list(self.operations)
        return [entry for entry in self.operations if entry[0] == op]


class OutputQueue:
    """Global FIFO implementing the head-marking output rule.

    ``sink`` receives emitted values in order.  The queue never scans:
    state changes touch only the affected item, and emission advances
    from the head.  ``peak_size`` is the memory metric reported by the
    benchmark harness (maximum number of simultaneously buffered,
    undetermined items).
    """

    def __init__(self, sink: List[str],
                 trace: Optional[BufferTrace] = None,
                 seq_source: Optional[Callable[[], int]] = None,
                 track_seqs: bool = False,
                 account=None):
        self.sink = sink
        self.trace = trace
        # Optional repro.obs.accounting.QueryAccount: a live ledger of
        # buffer state (occupancy, bytes, delays) fed by the same call
        # sites that feed the trace.
        self.account = account
        self._head: Optional[BufferItem] = None
        self._tail: Optional[BufferItem] = None
        self._size = 0
        self._next_seq = 0
        # A shared seq_source lets several queues (grouped multi-query
        # execution) stamp items with one global document order.
        self._seq_source = seq_source
        self.track_seqs = track_seqs
        self.emitted_seqs: List[int] = []
        self.peak_size = 0
        self.enqueued_total = 0
        self.cleared_total = 0
        self.emitted_total = 0
        self.flushed_total = 0
        # Uploads are performed only when a trace or an account is
        # attached (see track_ownership): ownership hops change no
        # output, so the matcher skips the arithmetic otherwise.  The
        # counter is therefore 0 in fully un-observed runs.
        self.uploaded_total = 0
        self.track_ownership = trace is not None or account is not None
        if not self.track_ownership:
            # Un-instrumented runs bind the plain variants once, here,
            # instead of testing ``trace``/``account`` against None on
            # every buffer operation.  The class has no __slots__
            # precisely so this per-instance rebinding works.
            self.new_item = self._new_item_plain
            self.mark_output = self._mark_output_plain
            self.mark_dead = self._mark_dead_plain
            self.value_finalized = self._value_finalized_plain
            self.finish = self._finish_plain
            self._advance = self._advance_plain

    def __len__(self) -> int:
        return self._size

    def ops_total(self) -> dict:
        """Lifetime operation counters as one dict (profiler/obs export)."""
        return {
            "enqueued": self.enqueued_total,
            "cleared": self.cleared_total,
            "emitted": self.emitted_total,
            "flushed": self.flushed_total,
            "uploaded": self.uploaded_total,
        }

    def new_item(self, value: Optional[str], owner: Tuple[int, int],
                 value_ready: bool = True,
                 on_emit: Optional[Callable[[BufferItem], None]] = None,
                 depth_vector: tuple = (),
                 governed: int = 0) -> BufferItem:
        """Enqueue a fresh pending item at the tail.

        ``governed`` is the number of unresolved predicates governing
        the item at enqueue time; only the accountant consumes it (the
        auditor's necessary-buffering check), so callers compute it
        only when an account is attached.
        """
        if self._seq_source is not None:
            seq = self._seq_source()
        else:
            seq = self._next_seq
            self._next_seq += 1
        item = BufferItem(value, seq, owner,
                          value_ready=value_ready, on_emit=on_emit)
        if self._tail is None:
            self._head = self._tail = item
        else:
            item.prev = self._tail
            self._tail.next = item
            self._tail = item
        self._size += 1
        self.enqueued_total += 1
        if self._size > self.peak_size:
            self.peak_size = self._size
        if self.trace is not None:
            self.trace.record("enqueue", owner, value, depth_vector,
                              item_seq=item.seq)
        if self.account is not None:
            self.account.on_enqueue(item, governed, depth_vector)
        return item

    def upload(self, item: BufferItem, new_owner: Tuple[int, int],
               depth_vector: tuple = ()) -> None:
        """Move the item to an ancestor BPDT's buffer (ownership only)."""
        old_owner = item.owner
        item.owner = new_owner
        self.uploaded_total += 1
        if self.trace is not None:
            self.trace.record("upload", new_owner, item.value, depth_vector,
                              item_seq=item.seq)
        if self.account is not None:
            self.account.on_upload(item, old_owner)

    def mark_output(self, item: BufferItem, depth_vector: tuple = ()) -> None:
        """Some embedding satisfied all predicates: flush when possible.

        The item is emitted immediately only if it has reached the head
        of the queue and its value is final; otherwise it waits, marked,
        exactly as Section 4.3 prescribes.  The flush is counted (and
        traced) once, on the first transition to OUTPUT — repeated
        marks from other embeddings are no-ops.
        """
        if item.state in (DEAD, SENT):
            return
        if item.state != OUTPUT:
            self.flushed_total += 1
            if self.trace is not None:
                self.trace.record("flush", item.owner, item.value,
                                  depth_vector, item_seq=item.seq)
            if self.account is not None:
                self.account.on_flush(item)
        item.state = OUTPUT
        self._advance()

    def mark_dead(self, item: BufferItem, depth_vector: tuple = ()) -> None:
        """Every embedding failed: clear the item from its buffer now."""
        if item.state in (DEAD, SENT, OUTPUT):
            # An item already marked "output" stays in the result even if
            # other embeddings later fail (Example 2's duplicate rule).
            return
        item.state = DEAD
        self.cleared_total += 1
        if self.trace is not None:
            self.trace.record("clear", item.owner, item.value, depth_vector,
                              item_seq=item.seq)
        if self.account is not None:
            self.account.on_clear(item)
        self._unlink(item)
        self._advance()

    def value_finalized(self, item: BufferItem) -> None:
        """The item's value is now complete (catchall end event)."""
        item.value_ready = True
        if self.account is not None:
            self.account.on_value_final(item)
        if item.state == OUTPUT:
            self._advance()

    def finish(self) -> None:
        """End of stream: every predicate has resolved; drain the queue."""
        self._advance()
        if self.account is not None:
            self.account.on_finish(self)

    # -- plain (uninstrumented) variants ---------------------------------
    #
    # Bound over the instrumented methods in __init__ when neither a
    # trace nor an account is attached: byte-for-byte the same counter
    # and linked-list mutations, minus the per-operation None-checks.
    # Keep these in lockstep with their instrumented twins above — the
    # obs-overhead benchmark's structural test asserts the bindings and
    # the equivalence suite asserts identical RunStats either way.

    def _new_item_plain(self, value: Optional[str], owner: Tuple[int, int],
                        value_ready: bool = True,
                        on_emit: Optional[Callable[[BufferItem], None]] = None,
                        depth_vector: tuple = (),
                        governed: int = 0) -> BufferItem:
        if self._seq_source is not None:
            seq = self._seq_source()
        else:
            seq = self._next_seq
            self._next_seq += 1
        item = BufferItem(value, seq, owner,
                          value_ready=value_ready, on_emit=on_emit)
        if self._tail is None:
            self._head = self._tail = item
        else:
            item.prev = self._tail
            self._tail.next = item
            self._tail = item
        self._size += 1
        self.enqueued_total += 1
        if self._size > self.peak_size:
            self.peak_size = self._size
        return item

    def _mark_output_plain(self, item: BufferItem,
                           depth_vector: tuple = ()) -> None:
        if item.state in (DEAD, SENT):
            return
        if item.state != OUTPUT:
            self.flushed_total += 1
        item.state = OUTPUT
        self._advance()

    def _mark_dead_plain(self, item: BufferItem,
                         depth_vector: tuple = ()) -> None:
        if item.state in (DEAD, SENT, OUTPUT):
            return
        item.state = DEAD
        self.cleared_total += 1
        self._unlink(item)
        self._advance()

    def _value_finalized_plain(self, item: BufferItem) -> None:
        item.value_ready = True
        if item.state == OUTPUT:
            self._advance()

    def _finish_plain(self) -> None:
        self._advance()

    def _advance_plain(self) -> None:
        head = self._head
        while head is not None and head.state == OUTPUT and head.value_ready:
            self._unlink(head)
            head.state = SENT
            self.emitted_total += 1
            if self.track_seqs:
                self.emitted_seqs.append(head.seq)
            if head.on_emit is not None:
                head.on_emit(head)
            else:
                self.sink.append(head.value if head.value is not None else "")
            head = self._head

    # -- internals -------------------------------------------------------

    def _unlink(self, item: BufferItem) -> None:
        if item.prev is not None:
            item.prev.next = item.next
        else:
            self._head = item.next
        if item.next is not None:
            item.next.prev = item.prev
        else:
            self._tail = item.prev
        item.prev = item.next = None
        self._size -= 1

    def _advance(self) -> None:
        head = self._head
        while head is not None and head.state == OUTPUT and head.value_ready:
            self._unlink(head)
            head.state = SENT
            self.emitted_total += 1
            if self.track_seqs:
                self.emitted_seqs.append(head.seq)
            if self.trace is not None:
                self.trace.record("send", head.owner, head.value, (),
                                  item_seq=head.seq)
            if self.account is not None:
                self.account.on_send(head)
            if head.on_emit is not None:
                head.on_emit(head)
            else:
                self.sink.append(head.value if head.value is not None else "")
            head = self._head
