"""Compiled HPDT fast path: transition tables + a slot interpreter.

The interpreted runtimes pay per-event Python overhead the paper's
C/Java systems never would: ``isinstance``-chained predicate dispatch,
string tag comparison, per-element object allocation.  For the query
class where the HPDT is *deterministic* — child-axis-only paths, the
paper's plain predicate categories 1–5 — all of that work is a function
of the query alone, so this module freezes it at compile time, the way
Koch et al. freeze their stream schedule:

* **Tag interning** (:class:`TagTable`): every distinct tag name maps to
  a small int once, at the parser boundary; the runtime then routes on
  ints.  The table is shared with the multi-query
  :class:`~repro.xsq.dispatch.DispatchIndex` so shared-dispatch routing
  uses the same ids.
* **Transition tables** (:class:`FastPlan`): per HPDT state (= number of
  matched leading steps, the deterministic engine's single current
  position) an int-keyed dict maps a begin event's tag id to the
  *complete* action list for that event — category-3/4 witness tests
  for the parent step and/or the match program for the next step — with
  every predicate lowered to a precompiled closure (no ``isinstance``,
  no attribute walks).  Text and child-text deciding events get the
  same treatment.
* **Slot interpreter** (:class:`FastRuntime`): one preallocated
  predicate-instance stack, integer depth gating, batched event feed
  (``(kind, tag_id, payload, depth)`` tuples from
  :meth:`~repro.streaming.sax_source.SaxEventSource.batches`), no Event
  objects, no per-event attribute dispatch.

* **Element (catchall) output** runs on the fast path too: when the
  query has no output expression the runtime captures the matched
  subtree straight from the batched tuples — opening tags rendered from
  the interned name + attrs dict, text through the zero-allocation
  :func:`~repro.streaming.serialize.escape_text` fast path — producing
  the same canonical serialization as the interpreted engines'
  :class:`~repro.streaming.serialize.EventSerializer` (comments/PIs
  dropped, CDATA and entities normalized at the parser boundary).
* **Generated kernels** (:mod:`repro.xsq.codegen`): each plan can be
  lowered further to a single closure-free dispatch function with the
  states and tag ids baked in as constants, memoized on the plan
  (``plan.kernel``) so it rides the HPDT compile cache exactly like the
  tables themselves.

Semantics are *identical* to the interpreted engines — the fast path
reuses :class:`~repro.xsq.matcher.PredicateInstance`,
:class:`~repro.xsq.matcher.Chain` and
:class:`~repro.xsq.buffers.OutputQueue` unchanged, so results, document
order and the buffer-operation counters (RunStats) are byte-for-byte
the same, which ``tests/test_fastpath_equivalence.py`` proves
differentially.  Queries outside the supported class (closure axis,
``not()``/``or()``, nested-path predicates) raise
:class:`~repro.errors.FastPathUnsupportedError` naming the first
unsupported feature; ``engine="auto"`` catches it and falls back to an
interpreted runtime with the reason surfaced in ``.explain()``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import FastPathUnsupportedError
from repro.streaming.events import BEGIN, END, TEXT
from repro.xpath.ast import (
    AggregateOutput,
    AttrExists,
    AttrOutput,
    Axis,
    ChildAttrExists,
    ChildExists,
    ElementOutput,
    NotPredicate,
    OrPredicate,
    PathPredicate,
    Query,
    TextExists,
    TextOutput,
    compare,
)
from repro.xpath.parser import parse_query
from repro.streaming.serialize import begin_tag, escape_text
from repro.xsq.aggregates import StatBuffer
from repro.xsq.buffers import BufferItem, OutputQueue
from repro.xsq.compile_cache import compile_hpdt
from repro.xsq.engine import RunStats
from repro.xsq.hpdt import Hpdt
from repro.xsq.matcher import Chain, PredicateInstance


class TagTable:
    """Bidirectional tag-name ↔ small-int interner.

    One table per engine run family: the parser boundary interns each
    distinct tag once (``sys.intern``-ed names make the dict lookups
    pointer comparisons in the common case) and every downstream
    consumer — the fast runtime's transition rows, the dispatch index's
    id routes — keys on the resulting ints.
    """

    __slots__ = ("ids", "names")

    def __init__(self):
        self.ids: Dict[str, int] = {}
        self.names: List[str] = []

    def intern(self, tag: str) -> int:
        tid = self.ids.get(tag)
        if tid is None:
            tid = len(self.names)
            self.ids[tag] = tid
            self.names.append(tag)
        return tid

    def get(self, tag: str) -> Optional[int]:
        """The id for ``tag`` if already interned (compile-time lookup)."""
        return self.ids.get(tag)

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self):
        return "<TagTable %d tags>" % len(self.names)


def unsupported_reason(query: Query) -> Optional[Tuple[str, str]]:
    """Why the fast path cannot run ``query`` — or None if it can.

    Returns ``(slug, message)`` for the *first* unsupported feature in
    query order (steps left to right, predicates in order, output
    last), which is what ``.explain()`` reports after a fallback.
    """
    for index, step in enumerate(query.steps):
        where = "step %d (%s)" % (index + 1, step.node_test)
        if step.axis is Axis.DESCENDANT:
            return ("closure-axis",
                    "closure axis // at %s needs the nondeterministic "
                    "runtime" % where)
        for predicate in step.predicates:
            if isinstance(predicate, NotPredicate):
                return ("not-predicate",
                        "not() predicate at %s" % where)
            if isinstance(predicate, OrPredicate):
                return ("or-predicate",
                        "or disjunction at %s" % where)
            if isinstance(predicate, PathPredicate):
                return ("path-predicate",
                        "nested path predicate at %s" % where)
    return None


# -- predicate lowering ----------------------------------------------------

def _attr_test(predicate) -> Callable[[dict], bool]:
    """Category-1 predicate → closure over an attrs dict."""
    if isinstance(predicate, AttrExists):
        attr = predicate.attr

        def test(attrs, _attr=attr):
            return _attr in attrs
        return test
    attr, op, value = predicate.attr, predicate.op, predicate.value

    def test(attrs, _attr=attr, _op=op, _value=value):
        found = attrs.get(_attr)
        return found is not None and compare(found, _op, _value)
    return test


def _text_test(predicate) -> Callable[[str], bool]:
    """Category-2 predicate → closure over the element's text."""
    if isinstance(predicate, TextExists):
        def test(text):
            return bool(text.strip())
        return test
    op, value = predicate.op, predicate.value

    def test(text, _op=op, _value=value):
        return compare(text, _op, _value)
    return test


def _child_attr_test(predicate) -> Optional[Callable[[dict], bool]]:
    """Category-3/4 predicate → closure over the child's attrs.

    ``None`` means the child's begin event alone is the witness
    (category 3: bare ``[child]``).
    """
    if isinstance(predicate, ChildExists):
        return None
    if isinstance(predicate, ChildAttrExists):
        attr = predicate.attr

        def test(attrs, _attr=attr):
            return _attr in attrs
        return test
    attr, op, value = predicate.attr, predicate.op, predicate.value

    def test(attrs, _attr=attr, _op=op, _value=value):
        found = attrs.get(_attr)
        return found is not None and compare(found, _op, _value)
    return test


def _child_text_test(predicate) -> Callable[[str], bool]:
    """Category-5 predicate → closure over the child's text."""
    op, value = predicate.op, predicate.value

    def test(text, _op=op, _value=value):
        return compare(text, _op, _value)
    return test


def _compile_match(step):
    """Lower one location step's begin-event decision to ``(prog, const,
    undecided)``.

    ``prog(attrs)`` evaluates the category-1 predicates and returns
    ``False`` (dead), or ``const``; when there are none, ``prog`` is
    ``None`` and the verdict is the constant directly.  ``const`` is
    ``True`` when no deciding events are pending and ``None`` (enter
    NA) otherwise; ``undecided`` are the pending predicate indices.
    """
    cat1_tests = []
    undecided = []
    for index, predicate in enumerate(step.predicates):
        if predicate.resolves_at_begin:
            cat1_tests.append(_attr_test(predicate))
        else:
            undecided.append(index)
    const = True if not undecided else None
    if not cat1_tests:
        return None, const, tuple(undecided)
    tests = tuple(cat1_tests)

    def prog(attrs, _tests=tests, _const=const):
        for test in _tests:
            if not test(attrs):
                return False
        return _const
    return prog, const, tuple(undecided)


class FastPlan:
    """The HPDT lowered to integer-indexed transition rows.

    State ``m`` (0..n) is "the first ``m`` location steps are matched
    by the currently open path" — the deterministic engine's single
    current position.  Each row answers, for one event kind at the only
    depths that can matter, "what is the complete action list?":

    ``begin_named[m]``
        tag id → ``(watches, match)`` for a begin event at depth
        ``m+1``: ``watches`` are the category-3/4 witness tests of step
        ``m-1`` listening for this child tag, ``match`` the lowered
        begin decision of step ``m`` (or None when the tag doesn't
        match it).
    ``begin_default[m]``
        the entry for tags not named in the row (wildcard watches
        and/or a wildcard node test), or None — in which case an
        unnamed begin event falls through in O(1).
    ``text_tests[m]``
        category-2 tests of step ``m-1`` for a text event at depth
        ``m``.
    ``child_text_named[m]`` / ``child_text_default[m]``
        category-5 tests of step ``m-1`` keyed by the child's tag id,
        for a text event at depth ``m+1``.
    """

    __slots__ = ("query", "tags", "n", "begin_named", "begin_default",
                 "text_tests", "child_text_named", "child_text_default",
                 "out_attr", "out_kind", "kernel", "eager_gate",
                 "schema_no_buffer", "schema_note")

    def __init__(self, query: Query, tags: TagTable, schema_info=None):
        self.query = query
        self.tags = tags
        #: ``(fn, note)`` once :func:`repro.xsq.codegen.compile_kernel`
        #: has run (``fn`` is None when codegen rejected the plan);
        #: None until then.  Memoized here so the kernel rides the
        #: HPDT compile cache exactly like the tables.
        self.kernel: Optional[tuple] = None
        #: Schema-derived state (None/False without a schema): per-state
        #: eagerly-resolved predicate-index sets, the static no-buffer
        #: proof, and the ``explain()`` note.  See
        #: :class:`repro.xsq.schema_compile.FastSchemaInfo`.
        self.eager_gate: Optional[tuple] = None
        self.schema_no_buffer = False
        self.schema_note: Optional[str] = None
        steps = query.steps
        n = self.n = len(steps)
        intern = tags.intern
        pruned_watches = 0
        narrowed_states = 0

        matches = [_compile_match(step) for step in steps]
        self.begin_named: List[Dict[int, tuple]] = []
        self.begin_default: List[Optional[tuple]] = []
        self.text_tests: List[tuple] = [()] * (n + 1)
        self.child_text_named: List[Dict[int, tuple]] = \
            [dict() for _ in range(n + 1)]
        self.child_text_default: List[tuple] = [()] * (n + 1)

        for m in range(n + 1):
            # Deciding-event watches of the deepest matched step (m-1).
            named_watches: Dict[int, list] = {}
            wild_watches: list = []
            text_tests: list = []
            ct_named: Dict[int, list] = {}
            ct_wild: list = []
            if m >= 1:
                step = steps[m - 1]
                # Transition pruning: a witness tag the schema forbids
                # as a child of every possible parent can never fire
                # its watch — the entry is dropped from the row.
                pool = (schema_info.child_pool[m]
                        if schema_info is not None else None)
                for pred_index, predicate in enumerate(step.predicates):
                    if predicate.resolves_at_begin:
                        continue
                    category = predicate.category
                    if category == 2:
                        text_tests.append((pred_index,
                                           _text_test(predicate)))
                    elif category in (3, 4):
                        if pool is not None and predicate.child != "*" \
                                and predicate.child not in pool:
                            pruned_watches += 1
                            continue
                        entry = (pred_index, _child_attr_test(predicate))
                        if predicate.child == "*":
                            wild_watches.append(entry)
                        else:
                            named_watches.setdefault(
                                intern(predicate.child), []).append(entry)
                    else:  # category 5
                        if pool is not None and predicate.child != "*" \
                                and predicate.child not in pool:
                            pruned_watches += 1
                            continue
                        entry = (pred_index, _child_text_test(predicate))
                        if predicate.child == "*":
                            ct_wild.append(entry)
                        else:
                            ct_named.setdefault(
                                intern(predicate.child), []).append(entry)
            self.text_tests[m] = tuple(text_tests)
            self.child_text_default[m] = tuple(ct_wild)
            self.child_text_named[m] = {
                tid: tuple(entries) + tuple(ct_wild)
                for tid, entries in ct_named.items()}

            # The match decision for step m, fused into the same row.
            match = None
            match_tid = None
            wildcard_step = False
            if m < n:
                match = matches[m]
                if steps[m].node_test == "*":
                    wildcard_step = True
                else:
                    match_tid = intern(steps[m].node_test)

            # Transition pruning: a wildcard step whose schema-allowed
            # tag set is finite (and small) is enumerated into named
            # entries, dropping the catch-all default — on schema-valid
            # documents no other tag can begin at this position.
            enum_tids = None
            if wildcard_step and schema_info is not None:
                from repro.xsq.schema_compile import MAX_WILDCARD_TAGS
                allowed_m = schema_info.allowed[m]
                if 0 < len(allowed_m) <= MAX_WILDCARD_TAGS:
                    enum_tids = frozenset(intern(tag)
                                          for tag in sorted(allowed_m))
                    narrowed_states += 1

            keys = set(named_watches)
            if match_tid is not None:
                keys.add(match_tid)
            if enum_tids is not None:
                keys |= enum_tids
            row: Dict[int, tuple] = {}
            for tid in keys:
                watches = tuple(named_watches.get(tid, ())) \
                    + tuple(wild_watches)
                if enum_tids is not None:
                    row_match = match if tid in enum_tids else None
                else:
                    row_match = match \
                        if (wildcard_step or tid == match_tid) else None
                row[tid] = (watches, row_match)
            default = None
            wild_match = wildcard_step and enum_tids is None
            if wild_watches or wild_match:
                default = (tuple(wild_watches),
                           match if wild_match else None)
            self.begin_named.append(row)
            self.begin_default.append(default)

        if schema_info is not None:
            if any(schema_info.eager_gate):
                self.eager_gate = tuple(schema_info.eager_gate)
            self.schema_no_buffer = schema_info.no_buffer
            gated = sum(len(gate) for gate in schema_info.eager_gate)
            bits = ["fingerprint %s" % schema_info.fingerprint]
            if pruned_watches:
                bits.append("pruned %d watch hook(s)" % pruned_watches)
            if narrowed_states:
                bits.append("narrowed %d wildcard state(s)" % narrowed_states)
            if gated:
                bits.append("eager resolution on %d predicate(s)" % gated)
            self.schema_note = "schema: " + ", ".join(bits)

        output = query.output
        self.out_attr: Optional[str] = None
        if isinstance(output, TextOutput):
            self.out_kind = "text"
        elif isinstance(output, AttrOutput):
            self.out_kind = "attr"
            self.out_attr = output.attr
        elif isinstance(output, AggregateOutput):
            self.out_kind = "count" if output.name == "count" else "agg"
        else:
            assert isinstance(output, ElementOutput)
            self.out_kind = "element"

    def describe(self) -> str:
        """Table-shape summary for ``.explain()``."""
        rows = sum(len(row) for row in self.begin_named)
        watches = sum(
            len(entries)
            for row in self.begin_named for entries, _ in row.values())
        return ("compiled transition tables: %d states, %d interned tags, "
                "%d begin-row entries (%d watch hooks), output=%s"
                % (self.n + 1, len(self.tags), rows, watches,
                   self.out_kind))


def compile_fastplan(hpdt: Hpdt, tags: Optional[TagTable] = None,
                     schema_info=None) -> FastPlan:
    """Lower ``hpdt`` to a :class:`FastPlan`, or raise
    :class:`FastPathUnsupportedError` naming the first blocker.

    With ``tags=None`` the plan is memoized on the HPDT itself
    (``hpdt._fastplan``), so it rides the process-wide HPDT compile
    cache: a query compiled once per process is *lowered* once per
    process too.  Passing an explicit shared ``tags`` table (the
    multi-query path, where every member must agree on tag ids)
    bypasses the memo.

    Schema-aware lowerings (``schema_info`` from
    :func:`repro.xsq.schema_compile.analyze_fastpath`) are memoized
    separately, keyed by schema fingerprint (``hpdt._schema_plans``) —
    never on the shared schema-less ``_fastplan`` slot, so a schema'd
    compile can never leak pruned rows into a plain run of the same
    HPDT object.
    """
    reason = unsupported_reason(hpdt.query)
    if reason is not None:
        slug, message = reason
        raise FastPathUnsupportedError(message, reason=slug)
    if tags is None:
        if schema_info is not None:
            plans = getattr(hpdt, "_schema_plans", None)
            if plans is None:
                plans = hpdt._schema_plans = {}
            plan = plans.get(schema_info.fingerprint)
            if plan is None:
                plan = FastPlan(hpdt.query, TagTable(), schema_info)
                plans[schema_info.fingerprint] = plan
            return plan
        plan = hpdt._fastplan
        if plan is None:
            plan = FastPlan(hpdt.query, TagTable())
            hpdt._fastplan = plan
        return plan
    return FastPlan(hpdt.query, tags, schema_info)


class FastRuntime:
    """One table-driven deterministic pass over one document.

    Mirrors :class:`repro.xsq.nc._NCRuntime`'s depth-gated logic —
    including its sparse-feed safety under shared dispatch (at any
    moment the open element at depth ``matched`` is *the* matched one,
    so withheld events can never desynchronize the gate) — but consumes
    batched tuples and dispatches through the compiled rows.  The
    buffer discipline is the shared one: ``PredicateInstance``,
    ``Chain`` and ``OutputQueue`` are reused unchanged, which is what
    makes results, order, and RunStats counters identical to the
    interpreted engines.
    """

    def __init__(self, plan: FastPlan, hpdt: Hpdt, sink: list,
                 stat: Optional[StatBuffer] = None,
                 queue: Optional[OutputQueue] = None,
                 kernel: Optional[Callable] = None):
        self.plan = plan
        self.hpdt = hpdt
        self.sink = sink
        self.stat = stat
        self.queue = queue if queue is not None else OutputQueue(sink)
        if self.queue.track_ownership:
            raise FastPathUnsupportedError(
                "the fast path runs without per-operation instrumentation; "
                "trace/accounting-bearing queues need an interpreted "
                "runtime", reason="observability")
        self.n = plan.n
        self.matched = 0
        #: Preallocated instance stack: slot m holds the activation of
        #: step m for the currently matched path (valid for m < matched).
        self.inst_stack: List[Optional[PredicateInstance]] = [None] * plan.n
        self._live = 0
        self.peak_instances = 0
        #: Open element capture: the serialized parts of the matched
        #: subtree (None outside a match) and its buffered item.  Kept
        #: on the runtime, not the loop, so captures survive arbitrary
        #: batch splits (push mode feeds whatever chunks arrive).
        self._cap_parts: Optional[List[str]] = None
        self._cap_item: Optional[BufferItem] = None
        out_kind = plan.out_kind
        self._out_begin = (self._out_begin_attr if out_kind == "attr"
                           else self._out_begin_count if out_kind == "count"
                           else self._out_begin_element
                           if out_kind == "element" else None)
        self._out_text = (self._out_text_value if out_kind == "text"
                          else self._out_text_agg if out_kind == "agg"
                          else None)
        if plan.schema_no_buffer:
            # Static no-buffer allocation: the schema proves every
            # instance on the stack is resolved by the time a result
            # exists, so items skip the pending scan and chain wiring
            # entirely and are marked for output at birth.
            self._make_item = self._make_item_resolved
        if kernel is not None:
            # Bind the generated kernel as the *instance's* run_batch so
            # every driver — pull loop, push handle, profiler sampling —
            # goes through it; mixing kernel and interpreter steps on
            # one runtime is never possible.
            self.run_batch = kernel.__get__(self, FastRuntime)

    # -- driving -----------------------------------------------------------

    def run_batch(self, batch) -> None:
        """Interpret one chunk of ``(kind, tag_id, payload, depth)``."""
        matched = self.matched
        n = self.n
        inst_stack = self.inst_stack
        plan = self.plan
        begin_named = plan.begin_named
        begin_default = plan.begin_default
        text_tests = plan.text_tests
        ct_named = plan.child_text_named
        ct_default = plan.child_text_default
        out_begin = self._out_begin
        out_text = self._out_text
        gates = plan.eager_gate
        live = self._live
        peak = self.peak_instances
        cap = self._cap_parts
        names = plan.tags.names

        for event in batch:
            kind = event[0]
            if kind == BEGIN:
                if cap is not None:
                    attrs = event[2]
                    if attrs:
                        cap.append(begin_tag(names[event[1]], attrs))
                    else:
                        cap.append("<%s>" % names[event[1]])
                if event[3] != matched + 1:
                    continue
                entry = begin_named[matched].get(event[1],
                                                 begin_default[matched])
                if entry is None:
                    continue
                watches, match = entry
                if watches and matched:
                    instance = inst_stack[matched - 1]
                    if instance.status is None:
                        pending = instance.pending
                        attrs = event[2]
                        for pred_index, test in watches:
                            if pred_index in pending and (
                                    test is None or test(attrs)):
                                instance.witness(pred_index, self)
                if match is None:
                    continue
                if gates is not None and matched:
                    gate = gates[matched]
                    if gate:
                        # Eager resolution (schema): the parent's gated
                        # predicates are provably decided by now, so a
                        # still-pending one can never become true —
                        # skip the descent instead of buffering under
                        # a doomed chain.
                        instance = inst_stack[matched - 1]
                        if instance.status is None \
                                and not instance.pending.isdisjoint(gate):
                            continue
                prog, const, undecided = match
                verdict = prog(event[2]) if prog is not None else const
                if verdict is False:
                    continue
                if verdict is True:
                    instance = PredicateInstance(matched + 1, None)
                else:
                    instance = PredicateInstance(matched + 1,
                                                 set(undecided))
                inst_stack[matched] = instance
                matched += 1
                live += 1
                if live > peak:
                    peak = live
                if matched == n and out_begin is not None:
                    self.matched = matched
                    out_begin(event)
                    cap = self._cap_parts
            elif kind == END:
                if cap is not None:
                    cap.append("</%s>" % names[event[1]])
                    if event[3] == matched:
                        # The captured element itself closed: finalize
                        # its buffered value *before* the frame pops —
                        # the NC runtime's queue-operation order.
                        item = self._cap_item
                        item.value = "".join(cap)
                        self.queue.value_finalized(item)
                        cap = self._cap_parts = self._cap_item = None
                if event[3] == matched and matched:
                    matched -= 1
                    live -= 1
                    instance = inst_stack[matched]
                    if instance.status is None:
                        instance.resolve_at_end(self)
            else:  # TEXT
                if cap is not None:
                    cap.append(escape_text(event[2]))
                depth = event[3]
                if depth == matched and matched:
                    tests = text_tests[matched]
                    if tests:
                        instance = inst_stack[matched - 1]
                        if instance.status is None:
                            pending = instance.pending
                            text = event[2]
                            for pred_index, test in tests:
                                if pred_index in pending and test(text):
                                    instance.witness(pred_index, self)
                    if matched == n and out_text is not None:
                        self.matched = matched
                        out_text(event)
                elif depth == matched + 1 and matched:
                    entries = ct_named[matched].get(event[1],
                                                    ct_default[matched])
                    if entries:
                        instance = inst_stack[matched - 1]
                        if instance.status is None:
                            pending = instance.pending
                            text = event[2]
                            for pred_index, test in entries:
                                if pred_index in pending and test(text):
                                    instance.witness(pred_index, self)

        self.matched = matched
        self._live = live
        self.peak_instances = peak

    def feed(self, event) -> None:
        """Single-tuple feed (the batched form is the hot path)."""
        self.run_batch((event,))

    def finish(self) -> None:
        self.queue.finish()

    # -- result production -------------------------------------------------

    def _out_begin_attr(self, event) -> None:
        value = event[2].get(self.plan.out_attr)
        if value is not None:
            self._make_item(value)

    def _out_begin_count(self, event) -> None:
        self._make_item("1", on_emit=self._agg_emitter(1.0))

    def _out_begin_element(self, event) -> None:
        """Open a subtree capture at the matched element's begin event.

        Mirrors ``_NCRuntime._on_result_begin``: the item is buffered
        (not value-ready) first, then the serializer sees the opening
        tag; ``run_batch`` appends every descendant event and the END
        at the match depth finalizes the value.
        """
        self._cap_item = self._make_item(None, value_ready=False)
        names = self.plan.tags.names
        attrs = event[2]
        if attrs:
            self._cap_parts = [begin_tag(names[event[1]], attrs)]
        else:
            self._cap_parts = ["<%s>" % names[event[1]]]

    def _out_text_value(self, event) -> None:
        self._make_item(event[2])

    def _out_text_agg(self, event) -> None:
        try:
            value = float(event[2].strip())
        except ValueError:
            return
        self._make_item(event[2], on_emit=self._agg_emitter(value))

    def _agg_emitter(self, value: float) -> Callable[[BufferItem], None]:
        stat = self.stat

        def emit(_item: BufferItem) -> None:
            stat.update(value)

        return emit

    def _make_item(self, value: Optional[str],
                   on_emit: Optional[Callable] = None,
                   value_ready: bool = True) -> BufferItem:
        """Buffer one output unit against the single current embedding.

        Matches ``_NCRuntime._make_item`` exactly for untracked queues
        (the only kind the fast path accepts): owner ``(n, 0)``, one
        chain, governed = still-NA ancestor count.
        """
        instances = tuple(self.inst_stack)
        pending = [inst for inst in instances if inst.status is None]
        item = self.queue.new_item(value, (self.n, 0),
                                   value_ready=value_ready,
                                   on_emit=on_emit,
                                   governed=len(pending))
        item.live_chains = 1
        if not pending:
            self.queue.mark_output(item)
        else:
            chain = Chain(item, len(pending), instances, ())
            for instance in pending:
                instance.chain_watchers.append(chain)
        return item

    def _make_item_resolved(self, value: Optional[str],
                            on_emit: Optional[Callable] = None,
                            value_ready: bool = True) -> BufferItem:
        """:meth:`_make_item` under the schema's no-buffer proof.

        Every instance on the stack is resolved whenever a result site
        is reached (the eager gates skip descents under pending
        predicates), so the pending scan and chain wiring are statically
        eliminated: items are born output-marked.
        """
        item = self.queue.new_item(value, (self.n, 0),
                                   value_ready=value_ready,
                                   on_emit=on_emit, governed=0)
        item.live_chains = 1
        self.queue.mark_output(item)
        return item


class XSQEngineFast:
    """The compiled fast path behind ``repro.compile(..., engine="auto")``.

    Same surface as the interpreted engines (``run`` / ``iter_results``
    / ``stats`` / ``explain``), same results, order and buffer
    counters; construction raises
    :class:`~repro.errors.FastPathUnsupportedError` when the query or
    the observability configuration needs an interpreted runtime.
    ``obs`` bundles carrying only spans and metrics are accepted (run
    stats and phase spans are recorded); per-event instrumentation
    (event trace, accounting, per-event timing) forces the fallback —
    by design, the fast path has no per-event hook points.
    """

    name = "xsq-fast"
    supports_predicates = True
    supports_closures = False
    supports_aggregates = True
    streaming = True

    def __init__(self, query: Union[str, Query], obs=None, *, cache=None,
                 codegen: bool = True, schema=None):
        if obs is not None and (obs.events is not None
                                or obs.accounting is not None
                                or obs.per_event_timing):
            raise FastPathUnsupportedError(
                "per-event observability (event trace, accounting, "
                "per-event timing) needs an interpreted runtime",
                reason="observability")
        self.obs = obs
        self.schema = None
        schema_info = None
        analyze = None
        if schema is not None:
            # Imported lazily: the schema-off path never loads the
            # schema-compilation module at all.
            from repro.xsq.schema_compile import (analyze_fastpath,
                                                  coerce_schema)
            self.schema = coerce_schema(schema)
            analyze = analyze_fastpath
        schema_key = (self.schema.fingerprint
                      if self.schema is not None else None)
        if obs is not None:
            with obs.span("compile", engine=self.name):
                if isinstance(query, str):
                    with obs.span("parse"):
                        query = parse_query(query)
                with obs.span("hpdt-compile"):
                    self.hpdt = compile_hpdt(query, cache=cache, obs=obs,
                                             schema_key=schema_key)
                with obs.span("fastplan-lower"):
                    if analyze is not None:
                        schema_info = analyze(self.schema, self.hpdt.query)
                    self.plan = compile_fastplan(self.hpdt,
                                                 schema_info=schema_info)
        else:
            self.hpdt = compile_hpdt(query, cache=cache,
                                     schema_key=schema_key)
            if analyze is not None:
                schema_info = analyze(self.schema, self.hpdt.query)
            self.plan = compile_fastplan(self.hpdt,
                                         schema_info=schema_info)
        self.query = self.hpdt.query
        self.codegen_enabled = codegen
        if codegen:
            from repro.xsq.codegen import compile_kernel
            self.kernel, self.kernel_note = compile_kernel(self.plan)
        else:
            self.kernel = None
            self.kernel_note = "codegen disabled (codegen=False)"
        self.trace = None
        self.last_stats: Optional[RunStats] = None
        self.last_stat_buffer: Optional[StatBuffer] = None
        self.selection_note: Optional[str] = None

    # -- running -----------------------------------------------------------

    def run(self, source, sink: Optional[list] = None) -> list:
        """Evaluate the query over ``source``; see :meth:`XSQEngine.run`."""
        if sink is None:
            sink = []
        obs = self.obs
        if obs is None:
            count, runtime, stat = self._drive(source, sink)
        else:
            with obs.span("run", engine=self.name, query=self.query.text):
                with obs.span("stream", engine=self.name) as stream_span:
                    if obs.profiler is not None:
                        count, runtime, stat = self._drive_profiled(
                            source, sink, obs.profiler)
                    else:
                        count, runtime, stat = self._drive(source, sink)
            obs.record_run(self.name, self.last_stats,
                           seconds=stream_span.duration)
        if stat is not None:
            return [stat.render()]
        return sink

    def _drive(self, source, sink):
        stat = self._new_stat(False)
        runtime = FastRuntime(self.plan, self.hpdt, sink, stat=stat,
                              kernel=self.kernel)
        count = 0
        run_batch = runtime.run_batch
        for batch in self._as_batches(source):
            count += len(batch)
            run_batch(batch)
        runtime.finish()
        self._capture_stats(runtime, count, stat)
        return count, runtime, stat

    def _drive_profiled(self, source, sink, prof):
        """The sampling profiler's drive loop.

        Every batch is timed at the batch boundary (four clock reads
        per ~2048-event batch: parse + automaton phases stay exact and
        noise-level cheap), while *per-event* attribution — hot state,
        hot tag, buffer/output split — runs only on every
        ``prof.sample_interval``-th batch, via single-tuple
        ``run_batch`` calls that are semantically identical to the
        batched form (``matched``/``inst_stack`` carry across calls).
        Unsampled batches execute the unchanged hot loop, which is what
        keeps profiled fast runs within the 2x-throughput floor.
        """
        stat = self._new_stat(False)
        runtime = FastRuntime(self.plan, self.hpdt, sink, stat=stat,
                              kernel=self.kernel)
        prof.note_engine(self.name)
        clock = prof.clock
        interval = prof.sample_interval
        names = self.plan.tags.names
        run_batch = runtime.run_batch
        count = 0
        index = 0
        parse = 0.0
        automaton = 0.0
        t0 = clock()
        for batch in self._as_batches(source):
            t1 = clock()
            count += len(batch)
            if index % interval == 0:
                prof.sample_batch(self.name, runtime, batch, names)
            else:
                run_batch(batch)
            t2 = clock()
            parse += t1 - t0
            automaton += t2 - t1
            index += 1
            t0 = t2
        prof.add_phase("parse", parse, count)
        prof.add_phase("automaton", automaton, count)
        prof.events += count
        prof.timed_finish(runtime)
        self._capture_stats(runtime, count, stat)
        return count, runtime, stat

    def iter_results(self, source) -> Iterator[str]:
        """Yield results incrementally, with batch granularity.

        The fast path drains the sink between *batches* rather than
        between events — the same values in the same order, surfacing
        at worst one batch later than the interpreted engines.
        """
        sink: list = []
        stat = self._new_stat(True)
        runtime = FastRuntime(self.plan, self.hpdt, sink, stat=stat,
                              kernel=self.kernel)
        count = 0
        for batch in self._as_batches(source):
            count += len(batch)
            runtime.run_batch(batch)
            if stat is not None:
                for value in stat.drain_snapshots():
                    yield value
            elif sink:
                for value in sink:
                    yield value
                sink.clear()
        runtime.finish()
        self._capture_stats(runtime, count, stat)
        if self.obs is not None:
            self.obs.record_run(self.name, self.last_stats)
        if stat is not None:
            yield stat.render()
        else:
            for value in sink:
                yield value
            sink.clear()

    def push(self, streaming_agg: bool = False):
        """Open a push handle for one incrementally-fed document.

        The returned :class:`~repro.xsq.push.FastPushHandle` consumes
        batched tuples (``feed_batch``) produced by a
        :class:`~repro.streaming.push.PushBatchParser` sharing this
        plan's :class:`TagTable`, or plain events (``feed_events``);
        semantics match :meth:`XSQEngine.push`.
        """
        from repro.xsq.push import FastPushHandle
        sink: list = []
        stat = self._new_stat(streaming_agg)
        runtime = FastRuntime(self.plan, self.hpdt, sink, stat=stat,
                              kernel=self.kernel)
        return FastPushHandle(self, runtime, sink, stat=stat,
                              streaming_agg=streaming_agg)

    # -- internals ---------------------------------------------------------

    def _as_batches(self, source):
        from repro.streaming.source import coerce_source
        return coerce_source(source).batches(self.plan.tags)

    def _new_stat(self, streaming: bool) -> Optional[StatBuffer]:
        if isinstance(self.query.output, AggregateOutput):
            return StatBuffer(self.query.output.name,
                              track_snapshots=streaming)
        return None

    def _capture_stats(self, runtime: FastRuntime, events: int,
                       stat: Optional[StatBuffer]) -> None:
        queue = runtime.queue
        self.last_stats = RunStats(
            events=events,
            enqueued=queue.enqueued_total,
            cleared=queue.cleared_total,
            emitted=queue.emitted_total,
            peak_buffered_items=queue.peak_size,
            peak_instances=runtime.peak_instances,
            flushed=queue.flushed_total,
            uploaded=queue.uploaded_total,
        )
        self.last_stat_buffer = stat

    def explain(self) -> str:
        lines = [self.hpdt.describe(), "",
                 "runtime: xsq-fast (%s)" % self.plan.describe()]
        if self.kernel is not None:
            lines.append("kernel: %s" % self.kernel_note)
        else:
            lines.append("kernel: interpreted slots (%s)" % self.kernel_note)
        if self.plan.schema_note:
            lines.append(self.plan.schema_note)
        if self.plan.schema_no_buffer:
            lines.append("buffering: none (schema)")
        if self.selection_note:
            lines.append(self.selection_note)
        return "\n".join(lines)

    @property
    def stats(self) -> Optional[RunStats]:
        """Stats from the most recent run (the facade's uniform name)."""
        return self.last_stats

    def __repr__(self):
        return "<XSQEngineFast %r>" % (self.query.text,)
