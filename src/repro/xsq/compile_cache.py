"""Process-wide compile cache: query string → frozen HPDT.

Compiled HPDTs are immutable once built — the runtimes only read the
BPDT tree, and every per-run mutable object (frames, predicate
instances, buffers) lives in :class:`~repro.xsq.matcher.MatcherRuntime`.
That makes an HPDT safe to share across engines, engine kinds (XSQ-F
and XSQ-NC compile the same structure), threads, and repeated
registrations of the same query — the "millions of users" case where
popular queries are compiled once per process, not once per session.

:class:`HpdtCache` is a small thread-safe LRU keyed on the query text,
with **pinning** (a pinned entry is never evicted — for a product's
known-hot queries) and hit/miss/eviction counters that the engines
export through :mod:`repro.obs`.  :func:`compile_hpdt` is the front
door every engine uses; ``cache=False`` bypasses caching entirely and
``cache=None`` uses the process-default instance.

Caches are **fork-safe**: every instance registers with an
``os.register_at_fork`` handler that hands the child a freshly-created
lock, so a fork taken while another thread holds a cache lock (the
worker pool's startup pattern) can never deadlock the child.  Entries
are kept by default — they are immutable and pre-warm the child — but
``HpdtCache(clear_on_fork=True)`` drops them instead, for caches whose
contents must stay process-private.

The fast path's lowered transition tables ride along: the first
:func:`repro.xsq.fastpath.compile_fastplan` call memoizes its
:class:`~repro.xsq.fastpath.FastPlan` on the HPDT (``hpdt._fastplan``),
so a cache hit skips both the HPDT build *and* the lowering, and
:func:`repro.xsq.codegen.compile_kernel` memoizes its generated kernel
on the plan (``plan.kernel``), so it also skips source generation and
``exec``.  Each memo is derived purely from the query, which is what
keeps them safe on shared instances.

    >>> from repro.xsq.compile_cache import DEFAULT_CACHE, compile_hpdt
    >>> first = compile_hpdt("/pub/book/name/text()")
    >>> compile_hpdt("/pub/book/name/text()") is first
    True
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Union

from repro.xpath.ast import Query
from repro.xpath.parser import parse_query
from repro.xsq.hpdt import Hpdt

#: Every live cache, so the at-fork handler can reach them all.  Weak:
#: registration must not keep short-lived test caches alive.
_ALL_CACHES: "weakref.WeakSet[HpdtCache]" = weakref.WeakSet()
_fork_hook_installed = False
_registry_lock = threading.Lock()


def _register(cache: "HpdtCache") -> None:
    global _fork_hook_installed
    with _registry_lock:
        _ALL_CACHES.add(cache)
        if not _fork_hook_installed and hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=_after_fork_in_child)
            _fork_hook_installed = True


def _after_fork_in_child() -> None:
    """Make every cache usable in the child, whatever the parent's
    threads were doing at fork time.

    The forked child inherits each cache's lock *state* but only the
    forking thread — a lock held by any other parent thread would stay
    locked forever.  A brand-new lock is always safe here because the
    child is single-threaded at this point.
    """
    for cache in list(_ALL_CACHES):
        cache._lock = threading.Lock()
        if cache.clear_on_fork:
            cache._entries.clear()
            cache._pinned.clear()
            cache.hits = cache.misses = cache.evictions = 0


class HpdtCache:
    """Thread-safe LRU of compiled HPDTs with pin support.

    ``maxsize`` bounds the number of *unpinned* entries; pinned entries
    are held forever (until :meth:`unpin` or :meth:`clear`).
    ``clear_on_fork=True`` empties the cache in forked children (the
    default keeps the immutable entries as a pre-warmed copy).
    """

    def __init__(self, maxsize: int = 256, clear_on_fork: bool = False):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.clear_on_fork = clear_on_fork
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Hpdt]" = OrderedDict()
        self._pinned: Dict[str, Hpdt] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _register(self)

    @staticmethod
    def _key(query: Union[str, Query],
             schema_key: Optional[str] = None) -> Optional[str]:
        """Cache key for a query; None means "not cacheable".

        String queries key on their stripped text; parsed queries key on
        the text the parser recorded.  Hand-built :class:`Query` objects
        with no source text bypass the cache.  ``schema_key`` (a
        :class:`~repro.xsq.schema_compile.CompiledSchema` fingerprint)
        is appended behind a NUL separator so the same query text
        compiled with no schema, with a schema, or with two different
        schemas can never collide — schema-derived memos (pruned plans,
        eager gates) ride the cached HPDT, so aliasing entries across
        schemas would leak one schema's optimizations into another's
        runs.
        """
        if isinstance(query, str):
            text = query.strip()
        else:
            text = (query.text or "").strip()
        if not text:
            return None
        if schema_key:
            return "%s\x00dtd=%s" % (text, schema_key)
        return text

    def get(self, query: Union[str, Query],
            schema_key: Optional[str] = None) -> Optional[Hpdt]:
        """The cached HPDT for ``query``, refreshing LRU order.

        A ``str`` query is looked up by text alone (parsing is
        deterministic, so the text determines the HPDT).  A parsed
        :class:`Query` is additionally verified structurally against
        the cached entry: synthesized queries (e.g. the schema
        optimizer's closure expansions) may carry the same ``text``
        with different steps, and must not alias each other.
        """
        key = self._key(query, schema_key)
        if key is None:
            return None
        check = query if isinstance(query, Query) else None
        with self._lock:
            hpdt = self._pinned.get(key)
            if hpdt is None:
                hpdt = self._entries.get(key)
                if hpdt is not None:
                    self._entries.move_to_end(key)
            if hpdt is not None and (check is None or hpdt.query == check):
                self.hits += 1
                return hpdt
            self.misses += 1
            return None

    def put(self, query: Union[str, Query], hpdt: Hpdt,
            schema_key: Optional[str] = None) -> None:
        key = self._key(query, schema_key)
        if key is None:
            return
        with self._lock:
            if key in self._pinned:
                return
            self._entries[key] = hpdt
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def pin(self, query: Union[str, Query]) -> Hpdt:
        """Compile-and-hold: the entry survives any amount of churn."""
        key = self._key(query)
        if key is None:
            raise ValueError("cannot pin a query with no source text")
        with self._lock:
            hpdt = self._pinned.get(key) or self._entries.pop(key, None)
            if hpdt is None:
                hpdt = Hpdt(parse_query(key))
                self.misses += 1
            else:
                self.hits += 1
            self._pinned[key] = hpdt
            return hpdt

    def unpin(self, query: Union[str, Query]) -> None:
        key = self._key(query)
        with self._lock:
            hpdt = self._pinned.pop(key, None)
            if hpdt is not None:
                self._entries[key] = hpdt
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (pinned included) and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._pinned.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._pinned)

    def __contains__(self, query: Union[str, Query]) -> bool:
        key = self._key(query)
        with self._lock:
            return key in self._entries or key in self._pinned

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._entries) + len(self._pinned),
                    "pinned": len(self._pinned)}

    def __repr__(self):
        return ("<HpdtCache size=%d/%d pinned=%d hits=%d misses=%d>"
                % (len(self._entries), self.maxsize, len(self._pinned),
                   self.hits, self.misses))


#: The process-default cache every engine shares unless told otherwise.
DEFAULT_CACHE = HpdtCache(maxsize=256)


def compile_hpdt(query: Union[str, Query], cache=None, obs=None,
                 schema_key: Optional[str] = None) -> Hpdt:
    """Compile (or fetch) the HPDT for ``query``.

    ``cache`` may be an :class:`HpdtCache`, ``None`` (use
    :data:`DEFAULT_CACHE`), or ``False`` (always compile fresh).  With
    an :class:`~repro.obs.Observability` bundle attached, each call
    increments ``repro_compile_cache_total{result=hit|miss|bypass}``.
    ``schema_key`` (the attached schema's fingerprint, if any) becomes
    part of the cache key: schema-compiled HPDTs carry schema-derived
    plan memos and must never alias the schema-less entry.
    """
    if cache is None or cache is True:
        cache = DEFAULT_CACHE
    if cache is False:
        hpdt = Hpdt(parse_query(query) if isinstance(query, str) else query)
        _record(obs, "bypass")
        return hpdt
    hpdt = cache.get(query, schema_key)
    if hpdt is not None:
        _record(obs, "hit")
        return hpdt
    hpdt = Hpdt(parse_query(query) if isinstance(query, str) else query)
    cache.put(query, hpdt, schema_key)
    _record(obs, "miss")
    return hpdt


def _record(obs, result: str) -> None:
    if obs is not None:
        obs.metrics.counter(
            "repro_compile_cache_total",
            "HPDT compile-cache lookups by result", result=result).inc()


def clear_default_cache() -> None:
    """Reset the process-default cache (tests, memory pressure)."""
    DEFAULT_CACHE.clear()
