"""XSQ-F: the full streaming XPath engine (closures + multiple
predicates + aggregations) — the paper's primary artifact.

Typical use::

    from repro import XSQEngine
    engine = XSQEngine("//pub[year>2000]//book[author]//name/text()")
    for value in engine.iter_results("catalog.xml"):
        print(value)

The compiled HPDT is built once per engine and reused across documents;
each ``run``/``iter_results`` call creates a fresh runtime.  Results are
emitted in document order, each exactly once, as soon as the paper's
buffer discipline allows (an item leaves the buffer the moment the last
governing predicate resolves *and* it reaches the head of the queue).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Union

from repro.streaming.events import Event
from repro.xpath.ast import AggregateOutput, Query
from repro.xpath.parser import parse_query
from repro.xsq.aggregates import StatBuffer
from repro.xsq.buffers import BufferTrace
from repro.xsq.compile_cache import compile_hpdt
from repro.xsq.matcher import MatcherRuntime


class RunStats:
    """Counters from one engine run, used by tests and the bench harness.

    ``enqueued``/``cleared``/``flushed``/``uploaded`` are the paper's
    four buffer operations (Section 3.3), each counted exactly once, in
    ``buffers.py`` (``tests/test_obs.py`` asserts stats, trace, and
    metrics agree).  ``uploaded`` is populated only when a trace or an
    account is attached, because ownership hops are otherwise skipped
    entirely (they affect no output).
    """

    __slots__ = ("events", "enqueued", "cleared", "emitted",
                 "peak_buffered_items", "peak_instances",
                 "flushed", "uploaded")

    def __init__(self, events=0, enqueued=0, cleared=0, emitted=0,
                 peak_buffered_items=0, peak_instances=0,
                 flushed=0, uploaded=0):
        self.events = events
        self.enqueued = enqueued
        self.cleared = cleared
        self.emitted = emitted
        self.peak_buffered_items = peak_buffered_items
        self.peak_instances = peak_instances
        self.flushed = flushed
        self.uploaded = uploaded

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def merged(cls, runs: Iterable["RunStats"]) -> "RunStats":
        """Aggregate stats across engines sharing one pass.

        Counters sum; peaks take the max; ``events`` takes the max
        (each member of a grouped run already reports the full stream
        length, so summing would double-count the shared pass).
        """
        total = cls()
        for run in runs:
            total.events = max(total.events, run.events)
            total.enqueued += run.enqueued
            total.cleared += run.cleared
            total.emitted += run.emitted
            total.flushed += run.flushed
            total.uploaded += run.uploaded
            total.peak_buffered_items = max(total.peak_buffered_items,
                                            run.peak_buffered_items)
            total.peak_instances = max(total.peak_instances,
                                       run.peak_instances)
        return total

    @classmethod
    def totals(cls, runs: Iterable[Union["RunStats", dict]]) -> "RunStats":
        """Aggregate stats across *independent* runs (one per document).

        Unlike :meth:`merged` — which models engines sharing a single
        pass and therefore maxes ``events`` — here every run is its own
        stream, so every counter (``events`` included) sums and only
        the peaks take the max.  Accepts ``as_dict()`` payloads too,
        which is how worker processes ship their stats home; the fold
        is order-independent, so a sharded corpus totals identically to
        a serial one.
        """
        total = cls()
        for run in runs:
            if isinstance(run, dict):
                run = cls(**run)
            total.events += run.events
            total.enqueued += run.enqueued
            total.cleared += run.cleared
            total.emitted += run.emitted
            total.flushed += run.flushed
            total.uploaded += run.uploaded
            total.peak_buffered_items = max(total.peak_buffered_items,
                                            run.peak_buffered_items)
            total.peak_instances = max(total.peak_instances,
                                       run.peak_instances)
        return total

    def __repr__(self):
        return "RunStats(%s)" % ", ".join(
            "%s=%d" % (k, v) for k, v in self.as_dict().items())


def _schema_note(schema, schema_dead) -> str:
    """Explain line for an interpreted engine's schema plan.

    The interpreted runtimes get *eager falsification* (a dead tag
    settles a pending predicate FALSE on arrival) rather than the fast
    path's static gating, so the note counts the registered dead-tag
    watch hooks.
    """
    hooks = sum(len(entries) for entries in (schema_dead or {}).values())
    if hooks:
        return ("schema: fingerprint %s, eager falsification hooks on "
                "%d (step, tag) pair(s)" % (schema.fingerprint, hooks))
    return ("schema: fingerprint %s (no eager falsification rules apply)"
            % schema.fingerprint)


class XSQEngine:
    """The XSQ-F engine: one compiled query, many documents.

    ``obs`` accepts an :class:`repro.obs.Observability` bundle; when
    attached, compilation and streaming are wrapped in spans, run stats
    flow into the metrics registry, and the bundle's
    :class:`~repro.obs.events.EventTrace` (if any) replaces the plain
    ``trace=True`` buffer trace.  When ``obs is None`` (the default) the
    hot loop is exactly the un-instrumented one.
    """

    name = "xsq-f"
    supports_predicates = True
    supports_closures = True
    supports_aggregates = True
    streaming = True

    def __init__(self, query: Union[str, Query], obs=None, *,
                 cache=None, trace=None, schema=None):
        if trace is not None:
            raise DeprecationWarning(
                "trace= was removed; attach an Observability bundle "
                "(obs=Observability(events=EventTrace())) for "
                "buffer-event tracing")
        self.obs = obs
        self.schema = None
        self._schema_dead = None
        schema_key = None
        analyze = None
        if schema is not None:
            # Imported lazily: the schema-less path must not pay for
            # (or even import) the schema compiler.
            from repro.xsq.schema_compile import (analyze_runtime,
                                                  coerce_schema)
            self.schema = coerce_schema(schema)
            schema_key = self.schema.fingerprint
            analyze = analyze_runtime
        if obs is not None:
            with obs.span("compile", engine=self.name):
                if isinstance(query, str):
                    from repro.xpath.tokens import tokenize_query
                    with obs.span("tokenize"):
                        tokenize_query(query.strip())
                    with obs.span("parse"):
                        query = parse_query(query)
                with obs.span("hpdt-compile"):
                    self.hpdt = compile_hpdt(query, cache=cache, obs=obs,
                                             schema_key=schema_key)
        else:
            self.hpdt = compile_hpdt(query, cache=cache,
                                     schema_key=schema_key)
        self.query = self.hpdt.query
        if analyze is not None:
            self._schema_dead = analyze(self.schema, self.query)
        if obs is not None and obs.events is not None:
            self.trace: Optional[BufferTrace] = obs.events
        else:
            self.trace = None
        self.last_stats: Optional[RunStats] = None
        self.last_stat_buffer: Optional[StatBuffer] = None
        # Set by repro.api.select_engine when engine="auto" fell back
        # here from the compiled fast path; surfaced by explain().
        self.selection_note: Optional[str] = None

    # -- running -----------------------------------------------------------

    def run(self, source, sink: Optional[List[str]] = None) -> List[str]:
        """Evaluate the query over ``source`` and return all results.

        ``source`` may be a path, XML text, bytes, a file object, or an
        iterable of events.  For aggregate queries the single final
        value is returned (as a one-element list).  ``sink`` may supply
        a custom result collector (anything with ``append``; the bench
        harness passes a counting sink so memory measurements do not
        charge the engine for the caller's result list).
        """
        if sink is None:
            sink = []
        obs = self.obs
        if obs is None:
            events = self._as_events(source)
            runtime, stat = self._new_runtime(sink)
            count = 0
            feed = runtime.feed
            for event in events:
                count += 1
                feed(event)
            runtime.finish()
            self._capture_stats(runtime, count, stat)
            if stat is not None:
                return [stat.render()]
            return sink
        with obs.span("run", engine=self.name, query=self.query.text):
            with obs.span("stream", engine=self.name) as stream_span:
                events = self._as_events(source)
                runtime, stat = self._new_runtime(sink)
                profiler = obs.profiler
                if profiler is not None:
                    count = profiler.pump_events(
                        self.name, events, runtime,
                        on_event=obs.event_hook())
                    profiler.timed_finish(runtime)
                else:
                    count = self._pump_observed(events, runtime, obs)
                    runtime.finish()
        self._capture_stats(runtime, count, stat)
        obs.record_run(self.name, self.last_stats,
                       seconds=stream_span.duration)
        if stat is not None:
            return [stat.render()]
        return sink

    def _pump_observed(self, events: Iterable[Event], runtime, obs) -> int:
        """The instrumented event loop: per-event trace context, buffer
        occupancy samples, and (optionally) dispatch-latency timing."""
        count = 0
        feed = runtime.feed
        queue = runtime.queue
        on_event = obs.event_hook()
        occupancy = obs.metrics.histogram(
            "repro_buffer_occupancy_items",
            "output-queue occupancy sampled after each event",
            engine=self.name)
        if obs.per_event_timing:
            import time
            from repro.obs.metrics import LATENCY_BUCKETS
            dispatch = obs.metrics.histogram(
                "repro_event_dispatch_seconds",
                "per-event dispatch latency",
                buckets=LATENCY_BUCKETS, engine=self.name)
            clock = time.perf_counter
            for event in events:
                count += 1
                if on_event is not None:
                    on_event(event)
                t0 = clock()
                feed(event)
                dispatch.observe(clock() - t0)
                occupancy.observe(len(queue))
        else:
            for event in events:
                count += 1
                if on_event is not None:
                    on_event(event)
                feed(event)
                occupancy.observe(len(queue))
        return count

    def iter_results(self, source) -> Iterator[str]:
        """Yield results incrementally, as soon as they are determined.

        For aggregate queries this yields every intermediate value (the
        paper's streaming ``stat.update`` semantics for unbounded
        streams), ending with the final value.
        """
        events = self._as_events(source)
        sink: List[str] = []
        runtime, stat = self._new_runtime(sink, streaming_agg=True)
        obs = self.obs
        on_event = obs.event_hook() if obs is not None else None
        count = 0
        for event in events:
            count += 1
            if on_event is not None:
                on_event(event)
            runtime.feed(event)
            if stat is not None:
                for value in stat.drain_snapshots():
                    yield value
            elif sink:
                # Drain (don't retain) so unbounded streams run in
                # bounded memory.
                for value in sink:
                    yield value
                sink.clear()
        runtime.finish()
        self._capture_stats(runtime, count, stat)
        if obs is not None:
            obs.record_run(self.name, self.last_stats)
        if stat is not None:
            yield stat.render()
        else:
            for value in sink:
                yield value
            sink.clear()

    def push(self, streaming_agg: bool = False):
        """Open a push handle for one incrementally-fed document.

        The returned :class:`~repro.xsq.push.EventPushHandle` exposes
        ``feed_events(events) -> results`` and ``finish() -> results``;
        the caller owns the input loop (see
        :meth:`repro.api.CompiledQuery.feed` for the chunk-level
        façade).  With ``streaming_agg=True`` aggregate queries emit
        intermediate values per feed (the :meth:`iter_results` shape)
        instead of only the final value at ``finish()``.
        """
        from repro.xsq.push import EventPushHandle
        sink: List[str] = []
        runtime, stat = self._new_runtime(sink, streaming_agg=streaming_agg)
        obs = self.obs
        on_event = obs.event_hook() if obs is not None else None
        return EventPushHandle(self, runtime, sink, stat=stat,
                               streaming_agg=streaming_agg,
                               on_event=on_event)

    # -- internals -----------------------------------------------------------

    def _as_events(self, source) -> Iterable[Event]:
        from repro.streaming.source import coerce_source
        return coerce_source(source).events()

    def _new_runtime(self, sink: List[str], streaming_agg: bool = False):
        stat = None
        if isinstance(self.query.output, AggregateOutput):
            stat = StatBuffer(self.query.output.name,
                              track_snapshots=streaming_agg)
        account = None
        if self.obs is not None and self.obs.accounting is not None:
            account = self.obs.accounting.account(self.query.text,
                                                  engine=self.name)
        runtime = MatcherRuntime(self.hpdt, sink, trace=self.trace,
                                 stat=stat, account=account,
                                 schema_dead=self._schema_dead)
        return runtime, stat

    def _capture_stats(self, runtime: MatcherRuntime, events: int,
                       stat: Optional[StatBuffer]) -> None:
        queue = runtime.queue
        self.last_stats = RunStats(
            events=events,
            enqueued=queue.enqueued_total,
            cleared=queue.cleared_total,
            emitted=queue.emitted_total,
            peak_buffered_items=queue.peak_size,
            peak_instances=runtime.peak_instances,
            flushed=queue.flushed_total,
            uploaded=queue.uploaded_total,
        )
        self.last_stat_buffer = stat

    def explain(self) -> str:
        """Describe the compiled HPDT (the CLI's --explain output)."""
        lines = [self.hpdt.describe(), "",
                 "runtime: xsq-f (nondeterministic interpreted runtime)"]
        if self.schema is not None:
            lines.append(_schema_note(self.schema, self._schema_dead))
        if self.selection_note:
            lines.append(self.selection_note)
        return "\n".join(lines)

    @property
    def stats(self) -> Optional[RunStats]:
        """Stats from the most recent run (the facade's uniform name)."""
        return self.last_stats

    def __repr__(self):
        return "<XSQEngine %r>" % (self.query.text,)
