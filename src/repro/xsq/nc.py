"""XSQ-NC: the deterministic engine without closures (Section 6).

The paper ships two versions of XSQ: XSQ-F (full, nondeterministic) and
XSQ-NC, which supports multiple predicates and aggregations but rejects
the closure axis.  Without ``//`` a location path aligns location steps
with element depths one-to-one, so the HPDT is deterministic: at any
moment there is a single current state, at most one transition arc can
match an event, matching can stop at the first hit, and — because a
single embedding exists per element — results are determined in
document order and can be sent to the output the moment their last
predicate resolves, with no duplicate bookkeeping.

Those properties are exactly why the paper measures XSQ-NC faster than
XSQ-F on identical closure-free queries (Figures 16/17) and more
sensitive to predicate position and result size (Figures 21/22): the
deterministic engine's per-event work collapses to a depth comparison
for everything outside the single match path.

The buffer machinery (:class:`OutputQueue`, :class:`PredicateInstance`,
:class:`Chain`) is shared with XSQ-F; in deterministic runs the
head-of-queue rule never actually delays an item (an earlier item's
governing predicates always resolve no later than a later item's, since
they live on the shared ancestor path).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.errors import ClosureNotSupportedError
from repro.streaming.events import Event
from repro.streaming.serialize import EventSerializer
from repro.xpath.ast import (
    AggregateOutput,
    AttrOutput,
    ElementOutput,
    Query,
    TextOutput,
)
from repro.xpath.parser import parse_query
from repro.xsq.aggregates import StatBuffer
from repro.xsq.bpdt import Bpdt
from repro.xsq.buffers import BufferItem, BufferTrace, OutputQueue
from repro.xsq.compile_cache import compile_hpdt
from repro.xsq.engine import RunStats, XSQEngine, _schema_note
from repro.xpath.ast import NotPredicate, OrPredicate, PathPredicate
from repro.xsq.matcher import Chain, PathTracker, PredicateInstance


class _NCFrame:
    """State for the one matched element at one depth of the match path."""

    __slots__ = ("instance", "text_watch", "child_begin_watch",
                 "child_text_watch", "element_item", "serializer",
                 "trackers", "dead_watch")

    def __init__(self, instance: PredicateInstance):
        self.instance = instance
        self.text_watch: List[tuple] = []
        self.child_begin_watch: List[tuple] = []
        self.child_text_watch: List[tuple] = []
        self.element_item: Optional[BufferItem] = None
        self.serializer: Optional[EventSerializer] = None
        self.trackers: List[PathTracker] = []
        # Schema dead-tag watches (see matcher.Frame.dead_watch).
        self.dead_watch: Optional[List[tuple]] = None


class _NCRuntime:
    """One deterministic pass over one document."""

    def __init__(self, engine: "XSQEngineNC", sink: List[str],
                 stat: Optional[StatBuffer],
                 trace: Optional[BufferTrace],
                 account=None):
        self.engine = engine
        self.hpdt = engine.hpdt
        self.steps = engine.query.steps
        self.n = len(self.steps)
        self.output = engine.query.output
        self.sink = sink
        self.stat = stat
        self.queue = OutputQueue(sink, trace=trace, account=account)
        self.account = account
        self.frames: List[_NCFrame] = []
        self._schema_dead = engine._schema_dead
        self._trackers: List[PathTracker] = []
        self._live_instances = 0
        self.peak_instances = 0
        # Execution profiler (repro.obs.profile); see MatcherRuntime.
        self.prof = None

    # -- event handlers ----------------------------------------------------

    def feed(self, event: Event) -> None:
        kind = event.kind
        if kind == "begin":
            self._on_begin(event)
        elif kind == "end":
            self._on_end(event)
        else:
            self._on_text(event)

    def finish(self) -> None:
        self.queue.finish()

    def profile_state(self) -> int:
        """Automaton progress for profiler attribution: the HPDT is
        deterministic, so the frame count *is* the current state."""
        return len(self.frames)

    def _on_begin(self, event: Event) -> None:
        frames = self.frames
        depth = event.depth
        matched = len(frames)
        if self._serializing():
            frames[-1].serializer.feed(event)
        if self._trackers:
            for tracker in self._trackers:
                tracker.on_begin(event.tag, event.attrs, depth, self)
        if depth != matched + 1:
            # Inside an unmatched subtree, or deeper than the match
            # path: nothing to do.  This single comparison is the
            # deterministic engine's fast path.
            return
        # A direct child of the deepest matched element may decide its
        # category-3/4 predicates, matched or not.
        if matched and frames[-1].child_begin_watch:
            prof = self.prof
            t0 = prof.clock() if prof is not None else 0.0
            for instance, pred_index, predicate in frames[-1].child_begin_watch:
                if instance.status is None and pred_index in instance.pending:
                    if Bpdt.child_begin_verdict(predicate, event.tag,
                                                event.attrs):
                        instance.witness(pred_index, self)
            if prof is not None:
                prof.add_phase("predicate", prof.clock() - t0,
                               len(frames[-1].child_begin_watch))
        # Schema eager falsification: after the witness scan, a child
        # tag past which the content model can never produce the
        # witness settles the pending predicate FALSE immediately (see
        # matcher.MatcherRuntime._on_begin).
        if matched and frames[-1].dead_watch is not None:
            for instance, pred_index, dead in frames[-1].dead_watch:
                if instance.status is None and event.tag in dead \
                        and pred_index in instance.pending:
                    instance.resolve_false(self)
        if depth > self.n:
            return
        step = self.steps[depth - 1]
        if not step.matches_tag(event.tag):
            return
        bpdt = self.hpdt.bpdts[(depth, (1 << depth) - 1)]
        verdict = bpdt.begin_verdict(event.attrs)
        if verdict is False:
            return
        if verdict is True:
            instance = PredicateInstance(depth, None)
        else:
            undecided = [(i, p) for i, p in enumerate(step.predicates)
                         if not p.resolves_at_begin]
            instance = PredicateInstance(depth, {i for i, _ in undecided})
        frame = _NCFrame(instance)
        if verdict is None:
            for pred_index, predicate in undecided:
                self._register_watcher(frame, instance, pred_index,
                                       predicate, depth)
            if self._schema_dead is not None:
                hooks = self._schema_dead.get((depth - 1, event.tag))
                if hooks:
                    pending = instance.pending
                    for pred_index, dead in hooks:
                        if pred_index in pending:
                            if frame.dead_watch is None:
                                frame.dead_watch = []
                            frame.dead_watch.append(
                                (instance, pred_index, dead))
        frames.append(frame)
        self._live_instances += 1
        if self._live_instances > self.peak_instances:
            self.peak_instances = self._live_instances
        if self.account is not None:
            self.account.set_instances(self._live_instances)
        if depth == self.n:
            self._on_result_begin(frame, event)

    def _register_watcher(self, frame: _NCFrame,
                          instance: PredicateInstance, pred_index: int,
                          predicate, depth: int) -> None:
        """Route one undecided predicate to its deciding-event hook."""
        if isinstance(predicate, NotPredicate):
            instance.negated.add(pred_index)
            self._register_watcher(frame, instance, pred_index,
                                   predicate.inner, depth)
            return
        if isinstance(predicate, OrPredicate):
            for branch in predicate.branches:
                if not branch.resolves_at_begin:
                    self._register_watcher(frame, instance, pred_index,
                                           branch, depth)
            return
        if isinstance(predicate, PathPredicate):
            tracker = PathTracker(instance, pred_index, predicate, depth)
            frame.trackers.append(tracker)
            self._trackers.append(tracker)
            return
        entry = (instance, pred_index, predicate)
        if predicate.category == 2:
            frame.text_watch.append(entry)
        elif predicate.category in (3, 4):
            frame.child_begin_watch.append(entry)
        else:
            frame.child_text_watch.append(entry)

    def _on_text(self, event: Event) -> None:
        frames = self.frames
        matched = len(frames)
        depth = event.depth
        if self._serializing():
            frames[-1].serializer.feed(event)
        if self._trackers:
            for tracker in self._trackers:
                tracker.on_text(event.text, depth, self)
        if depth == matched and frames:
            frame = frames[-1]
            if frame.text_watch:
                prof = self.prof
                t0 = prof.clock() if prof is not None else 0.0
                for instance, pred_index, predicate in frame.text_watch:
                    if (instance.status is None
                            and pred_index in instance.pending
                            and Bpdt.text_verdict(predicate, event.text)):
                        instance.witness(pred_index, self)
                if prof is not None:
                    prof.add_phase("predicate", prof.clock() - t0,
                                   len(frame.text_watch))
            if matched == self.n:
                self._on_result_text(event)
        elif depth == matched + 1 and frames and frames[-1].child_text_watch:
            # Text inside a direct child of the deepest matched element
            # may decide its category-5 predicates.
            prof = self.prof
            t0 = prof.clock() if prof is not None else 0.0
            for instance, pred_index, predicate in frames[-1].child_text_watch:
                if (instance.status is None
                        and pred_index in instance.pending
                        and Bpdt.child_text_verdict(predicate, event.tag,
                                                    event.text)):
                    instance.witness(pred_index, self)
            if prof is not None:
                prof.add_phase("predicate", prof.clock() - t0,
                               len(frames[-1].child_text_watch))

    def _on_end(self, event: Event) -> None:
        frames = self.frames
        if self._serializing():
            frames[-1].serializer.feed(event)
        if self._trackers:
            for tracker in self._trackers:
                tracker.on_end(event.depth)
        if event.depth != len(frames) or not frames:
            return
        frame = frames.pop()
        if frame.trackers:
            for tracker in frame.trackers:
                tracker.done = True
            self._trackers = [t for t in self._trackers if not t.done]
        if frame.element_item is not None:
            frame.element_item.value = frame.serializer.getvalue()
            self.queue.value_finalized(frame.element_item)
        self._live_instances -= 1
        if self.account is not None:
            self.account.set_instances(self._live_instances)
        if frame.instance.status is None:
            frame.instance.resolve_at_end(self)

    # -- result production ---------------------------------------------------

    def _serializing(self) -> bool:
        frames = self.frames
        return (bool(frames) and len(frames) == self.n
                and frames[-1].serializer is not None)

    def _on_result_begin(self, frame: _NCFrame, event: Event) -> None:
        output = self.output
        if isinstance(output, AttrOutput):
            value = event.attrs.get(output.attr)
            if value is not None:
                self._make_item(value)
        elif isinstance(output, ElementOutput):
            item = self._make_item(None, value_ready=False)
            if item is not None:
                frame.element_item = item
                frame.serializer = EventSerializer()
                frame.serializer.feed(event)
        elif isinstance(output, AggregateOutput) and output.name == "count":
            self._make_item("1", on_emit=self._agg_emitter(1.0))

    def _on_result_text(self, event: Event) -> None:
        output = self.output
        if isinstance(output, TextOutput):
            self._make_item(event.text)
        elif isinstance(output, AggregateOutput) and output.name != "count":
            try:
                value = float(event.text.strip())
            except ValueError:
                return
            self._make_item(event.text, on_emit=self._agg_emitter(value))

    def _agg_emitter(self, value: float) -> Callable[[BufferItem], None]:
        stat = self.stat

        def emit(_item: BufferItem) -> None:
            stat.update(value)

        return emit

    def _make_item(self, value: Optional[str], value_ready: bool = True,
                   on_emit: Optional[Callable] = None) -> BufferItem:
        """Buffer one output unit against the single current embedding."""
        tracking = self.queue.track_ownership
        instances = tuple(frame.instance for frame in self.frames)
        if any(inst.status is False for inst in instances):
            # A negated predicate was witnessed mid-element: the whole
            # path is already dead (before not(), a False instance could
            # only exist after its frame had popped).
            return None
        pending = [inst for inst in instances if inst.status is None]
        owner = (self.hpdt.id_for_statuses(
            tuple([True] + [inst.status is True
                            for inst in instances[:-1]]))
            if tracking else (len(instances), 0))
        item = self.queue.new_item(value, owner, value_ready=value_ready,
                                   on_emit=on_emit, governed=len(pending))
        item.live_chains = 1
        chain = Chain(item, len(pending), instances, ())
        if not pending:
            self.queue.mark_output(item)
        else:
            for instance in pending:
                instance.chain_watchers.append(chain)
            if tracking:
                target = chain.owner_id(self.hpdt)
                if target is not None and target != item.owner:
                    self.queue.upload(item, target)
        return item


class XSQEngineNC:
    """XSQ-NC: deterministic streaming XPath, no closure axis.

    Raises :class:`ClosureNotSupportedError` at construction when the
    query contains ``//``; callers fall back to :class:`XSQEngine`.
    """

    name = "xsq-nc"
    supports_predicates = True
    supports_closures = False
    supports_aggregates = True
    streaming = True

    def __init__(self, query: Union[str, Query], obs=None, *,
                 cache=None, trace=None, schema=None):
        if trace is not None:
            raise DeprecationWarning(
                "trace= was removed; attach an Observability bundle "
                "(obs=Observability(events=EventTrace())) for "
                "buffer-event tracing")
        self.obs = obs
        self.schema = None
        self._schema_dead = None
        schema_key = None
        analyze = None
        if schema is not None:
            # Lazy: the schema-less path never imports the schema
            # compiler.
            from repro.xsq.schema_compile import (analyze_runtime,
                                                  coerce_schema)
            self.schema = coerce_schema(schema)
            schema_key = self.schema.fingerprint
            analyze = analyze_runtime
        if obs is not None:
            with obs.span("compile", engine=self.name):
                if isinstance(query, str):
                    from repro.xpath.tokens import tokenize_query
                    with obs.span("tokenize"):
                        tokenize_query(query.strip())
                    with obs.span("parse"):
                        query = parse_query(query)
                self._reject_closure(query)
                with obs.span("hpdt-compile"):
                    self.hpdt = compile_hpdt(query, cache=cache, obs=obs,
                                             schema_key=schema_key)
        else:
            if isinstance(query, str):
                query = parse_query(query)
            self._reject_closure(query)
            self.hpdt = compile_hpdt(query, cache=cache,
                                     schema_key=schema_key)
        self.query = self.hpdt.query
        if analyze is not None:
            self._schema_dead = analyze(self.schema, self.query)
        if obs is not None and obs.events is not None:
            self.trace: Optional[BufferTrace] = obs.events
        else:
            self.trace = None
        self.last_stats: Optional[RunStats] = None
        self.last_stat_buffer: Optional[StatBuffer] = None
        # Set by repro.api.select_engine when engine="auto" fell back
        # here from the compiled fast path; surfaced by explain().
        self.selection_note: Optional[str] = None

    @staticmethod
    def _reject_closure(query: Query) -> None:
        if query.has_closure:
            raise ClosureNotSupportedError(
                "XSQ-NC does not support the closure axis //; "
                "use XSQEngine (XSQ-F) for %r" % (query.text,))

    def run(self, source, sink: Optional[List[str]] = None) -> List[str]:
        """Evaluate the query over ``source``; see :meth:`XSQEngine.run`."""
        if sink is None:
            sink = []
        obs = self.obs
        if obs is None:
            events = self._as_events(source)
            stat = self._new_stat(False)
            runtime = self._new_runtime(sink, stat)
            count = 0
            feed = runtime.feed
            for event in events:
                count += 1
                feed(event)
            runtime.finish()
            self._capture_stats(runtime, count, stat)
            if stat is not None:
                return [stat.render()]
            return sink
        with obs.span("run", engine=self.name, query=self.query.text):
            with obs.span("stream", engine=self.name) as stream_span:
                events = self._as_events(source)
                stat = self._new_stat(False)
                runtime = self._new_runtime(sink, stat)
                profiler = obs.profiler
                if profiler is not None:
                    count = profiler.pump_events(
                        self.name, events, runtime,
                        on_event=obs.event_hook())
                    profiler.timed_finish(runtime)
                else:
                    count = self._pump_observed(events, runtime, obs)
                    runtime.finish()
        self._capture_stats(runtime, count, stat)
        obs.record_run(self.name, self.last_stats,
                       seconds=stream_span.duration)
        if stat is not None:
            return [stat.render()]
        return sink

    # The instrumented event loop is identical for both engines.
    _pump_observed = XSQEngine._pump_observed

    def iter_results(self, source) -> Iterator[str]:
        """Yield results incrementally (intermediate values for aggregates)."""
        events = self._as_events(source)
        sink: List[str] = []
        stat = self._new_stat(True)
        runtime = self._new_runtime(sink, stat)
        obs = self.obs
        on_event = obs.event_hook() if obs is not None else None
        count = 0
        for event in events:
            count += 1
            if on_event is not None:
                on_event(event)
            runtime.feed(event)
            if stat is not None:
                for value in stat.drain_snapshots():
                    yield value
            elif sink:
                # Drain (don't retain): bounded memory on long streams.
                for value in sink:
                    yield value
                sink.clear()
        runtime.finish()
        self._capture_stats(runtime, count, stat)
        if obs is not None:
            obs.record_run(self.name, self.last_stats)
        if stat is not None:
            yield stat.render()
        else:
            for value in sink:
                yield value
            sink.clear()

    def _as_events(self, source) -> Iterable[Event]:
        from repro.streaming.source import coerce_source
        return coerce_source(source).events()

    def push(self, streaming_agg: bool = False):
        """Open a push handle for one incrementally-fed document; see
        :meth:`XSQEngine.push` — the handle type and semantics are
        identical, over the deterministic runtime."""
        from repro.xsq.push import EventPushHandle
        sink: List[str] = []
        stat = self._new_stat(streaming_agg)
        runtime = self._new_runtime(sink, stat)
        obs = self.obs
        on_event = obs.event_hook() if obs is not None else None
        return EventPushHandle(self, runtime, sink, stat=stat,
                               streaming_agg=streaming_agg,
                               on_event=on_event)

    def _new_stat(self, streaming: bool) -> Optional[StatBuffer]:
        if isinstance(self.query.output, AggregateOutput):
            return StatBuffer(self.query.output.name,
                              track_snapshots=streaming)
        return None

    def _new_runtime(self, sink: List[str],
                     stat: Optional[StatBuffer]) -> _NCRuntime:
        account = None
        if self.obs is not None and self.obs.accounting is not None:
            account = self.obs.accounting.account(self.query.text,
                                                  engine=self.name)
        return _NCRuntime(self, sink, stat, self.trace, account=account)

    def _capture_stats(self, runtime: _NCRuntime, events: int,
                       stat: Optional[StatBuffer]) -> None:
        queue = runtime.queue
        self.last_stats = RunStats(
            events=events,
            enqueued=queue.enqueued_total,
            cleared=queue.cleared_total,
            emitted=queue.emitted_total,
            peak_buffered_items=queue.peak_size,
            peak_instances=runtime.peak_instances,
            flushed=queue.flushed_total,
            uploaded=queue.uploaded_total,
        )
        self.last_stat_buffer = stat

    def explain(self) -> str:
        lines = [self.hpdt.describe(), "",
                 "runtime: xsq-nc (deterministic interpreted runtime)"]
        if self.schema is not None:
            lines.append(_schema_note(self.schema, self._schema_dead))
        if self.selection_note:
            lines.append(self.selection_note)
        return "\n".join(lines)

    @property
    def stats(self) -> Optional[RunStats]:
        """Stats from the most recent run (the facade's uniform name)."""
        return self.last_stats

    def __repr__(self):
        return "<XSQEngineNC %r>" % (self.query.text,)
