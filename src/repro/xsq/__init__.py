"""The XSQ system: streaming XPath via hierarchical pushdown transducers.

Public entry points:

* :class:`XSQEngine` — XSQ-F, the full engine (closures, multiple
  predicates, aggregations).
* :class:`XSQEngineNC` — XSQ-NC, the faster deterministic engine that
  rejects closures.
* :class:`XSQEngineFast` — the compiled fast path: the deterministic
  HPDT lowered to integer-indexed transition tables at compile time.
* :class:`Hpdt` / :class:`Bpdt` — the compiled automata, inspectable
  (``describe()``, ``to_dot()``).

See DESIGN.md for how the modules map onto the paper's sections.
"""

from repro.xsq.aggregates import StatBuffer, format_number
from repro.xsq.bpdt import Bpdt
from repro.xsq.buffers import BufferItem, BufferTrace, OutputQueue
from repro.xsq.compile_cache import (
    DEFAULT_CACHE,
    HpdtCache,
    clear_default_cache,
    compile_hpdt,
)
from repro.xsq.depthvector import DepthVector
from repro.xsq.dispatch import DispatchIndex
from repro.xsq.engine import RunStats, XSQEngine
from repro.xsq.fastpath import (
    FastPlan,
    FastRuntime,
    TagTable,
    XSQEngineFast,
    compile_fastplan,
)
from repro.xsq.hpdt import Hpdt
from repro.xsq.matcher import MatcherRuntime, PredicateInstance
from repro.xsq.multiquery import MultiQueryEngine
from repro.xsq.nc import XSQEngineNC
from repro.xsq.schema_opt import Plan, SchemaAwareEngine, optimize

__all__ = [
    "StatBuffer",
    "format_number",
    "Bpdt",
    "BufferItem",
    "BufferTrace",
    "OutputQueue",
    "DEFAULT_CACHE",
    "HpdtCache",
    "clear_default_cache",
    "compile_hpdt",
    "DepthVector",
    "DispatchIndex",
    "RunStats",
    "XSQEngine",
    "XSQEngineFast",
    "XSQEngineNC",
    "FastPlan",
    "FastRuntime",
    "TagTable",
    "compile_fastplan",
    "MultiQueryEngine",
    "SchemaAwareEngine",
    "Plan",
    "optimize",
    "Hpdt",
    "MatcherRuntime",
    "PredicateInstance",
]
