"""Hierarchical Pushdown Transducer — Section 4.

The HPDT composes one BPDT per location step into a binary tree whose
*positions* encode predicate knowledge:

* ``bpdt(0,0)`` is the root template (Figure 12).
* For each ``bpdt(i-1, k)`` generated from step ``N_{i-1}``:
  its **left child** ``bpdt(i, 2k+1)`` starts from the parent's TRUE
  state (parent predicate known true) and its **right child**
  ``bpdt(i, 2k)`` starts from the parent's NA state (parent predicate
  still unknown); the right child exists only when the parent has an NA
  state.
* With ``k = (k_0 k_1 ... )₂`` (most significant bit first), the HPDT
  being anywhere inside ``bpdt(l,k)`` means the predicate of the
  ancestor at level ``i`` is known true iff ``k_i = 1``.
* ``bpdt(l, 2^l - 1)`` — the all-ones position — is the only BPDT at
  its layer where every ancestor predicate is known true, so it alone
  may send results directly to the output.
* ``upload`` moves a buffer's items to *the nearest ancestor that has
  the current BPDT in its right subtree* — i.e. the deepest ancestor
  whose predicate is still NA — which is exactly the lowest zero bit
  of ``k``.

Closure steps (``//``) additionally get a ``//`` self-transition on
their START state, and their begin arcs into lower layers are marked as
closure transitions (``=``) that accept the tag at any depth
(Section 4.2, last paragraphs).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.xpath.ast import Axis, Query
from repro.xpath.parser import parse_query
from repro.xsq.bpdt import Bpdt, step_interest

BpdtId = Tuple[int, int]


class Hpdt:
    """The compiled query: a binary tree of BPDTs plus the output plan."""

    def __init__(self, query: Union[str, Query]):
        self.query = parse_query(query) if isinstance(query, str) else query
        self.depth = len(self.query.steps)
        self.bpdts: Dict[BpdtId, Bpdt] = {}
        self.closure_levels = frozenset(
            i + 1 for i, step in enumerate(self.query.steps)
            if step.axis is Axis.DESCENDANT)
        # Memo slot for the fast path's lowered transition tables
        # (:func:`repro.xsq.fastpath.compile_fastplan`).  Compute-once
        # and derived purely from ``query``, so it is safe to carry on
        # instances shared through the HPDT compile cache.
        self._fastplan = None
        self._build()

    def _build(self) -> None:
        self.bpdts[(0, 0)] = Bpdt(None, (0, 0))
        for level in range(1, self.depth + 1):
            step = self.query.steps[level - 1]
            lowest = level == self.depth
            for (plevel, pk), parent in list(self.bpdts.items()):
                if plevel != level - 1:
                    continue
                left_id = (level, 2 * pk + 1)
                self.bpdts[left_id] = Bpdt(step, left_id,
                                           is_output_layer=lowest)
                if parent.has_na_state:
                    right_id = (level, 2 * pk)
                    self.bpdts[right_id] = Bpdt(step, right_id,
                                                is_output_layer=lowest)

    # -- tree navigation ---------------------------------------------------

    def parent_of(self, bpdt_id: BpdtId) -> Optional[BpdtId]:
        level, k = bpdt_id
        if level == 0:
            return None
        return (level - 1, k >> 1)

    def ancestors(self, bpdt_id: BpdtId) -> Iterator[BpdtId]:
        """Ancestor ids from parent up to the root BPDT."""
        current = self.parent_of(bpdt_id)
        while current is not None:
            yield current
            current = self.parent_of(current)

    def is_left_child(self, bpdt_id: BpdtId) -> bool:
        return bool(bpdt_id[1] & 1)

    def upload_target(self, bpdt_id: BpdtId) -> Optional[BpdtId]:
        """Nearest ancestor holding this BPDT in its *right* subtree.

        That ancestor's predicate is the deepest one still NA, so it is
        where undetermined items belong.  ``None`` means every ancestor
        predicate is known true — items flush to the output instead
        (``bpdt(l, 2^l - 1)``).

        >>> h = Hpdt("/pub[year>2000]/book[author]/name/text()")
        >>> h.upload_target((3, 4))   # (100)2: both predicates NA
        (2, 2)
        >>> h.upload_target((2, 2))   # book's predicate resolved
        (1, 1)
        >>> h.upload_target((3, 7)) is None   # all-ones: flush directly
        True
        """
        level, k = bpdt_id
        for bit in range(level):
            if not (k >> bit) & 1:
                return (level - bit - 1, k >> (bit + 1))
        return None

    def truth_bits(self, bpdt_id: BpdtId) -> Tuple[bool, ...]:
        """Which ancestor predicates are known true at this position.

        Index ``i`` of the result corresponds to the BPDT at level
        ``i`` (the paper's ``k_i``); see the module docstring.
        """
        level, k = bpdt_id
        return tuple(bool((k >> (level - 1 - i)) & 1) for i in range(level))

    def output_bpdt_id(self) -> BpdtId:
        """The all-true position at the lowest layer."""
        return (self.depth, (1 << self.depth) - 1)

    def id_for_statuses(self, statuses: Tuple[bool, ...]) -> BpdtId:
        """Position of the BPDT reached given ancestor truth values.

        ``statuses[i]`` is True when the level-``i`` predicate is known
        true.  Inverse of :meth:`truth_bits`.
        """
        k = 0
        for known_true in statuses:
            k = (k << 1) | (1 if known_true else 0)
        return (len(statuses), k)

    def tag_interest(self) -> Tuple[frozenset, bool]:
        """Tags whose events can affect this HPDT, plus a wildcard flag.

        The union of :func:`repro.xsq.bpdt.step_interest` over every
        location step.  An event whose tag is outside the returned set
        (when ``wildcard`` is False) cannot advance any BPDT, decide any
        predicate, or produce a result — the shared dispatch index uses
        this to route each stream event to only the machines that can
        react to it.

        >>> tags, wildcard = Hpdt("/pub[year>2000]/book/name/text()").tag_interest()
        >>> sorted(tags), wildcard
        (['book', 'name', 'pub', 'year'], False)
        """
        tags = set()
        wildcard = False
        for step in self.query.steps:
            step_tags, step_wild = step_interest(step)
            tags |= step_tags
            wildcard = wildcard or step_wild
        return frozenset(tags), wildcard

    # -- introspection -------------------------------------------------------

    @property
    def bpdt_count(self) -> int:
        return len(self.bpdts)

    @property
    def state_count(self) -> int:
        return sum(len(b.states) for b in self.bpdts.values())

    def layer(self, level: int) -> List[Bpdt]:
        """All BPDTs at one layer, highest k first (paper's right-to-left)."""
        return [b for (l, _), b in sorted(self.bpdts.items(), reverse=True)
                if l == level]

    def describe(self) -> str:
        lines = ["HPDT for query: %s" % (self.query.text or repr(self.query)),
                 "%d BPDTs, %d states, closure levels: %s"
                 % (self.bpdt_count, self.state_count,
                    sorted(self.closure_levels) or "none")]
        for bpdt_id in sorted(self.bpdts):
            bpdt = self.bpdts[bpdt_id]
            target = self.upload_target(bpdt_id)
            dest = ("output" if target is None
                    else "bpdt(%d,%d)" % target)
            lines.append(bpdt.describe())
            lines.append("  upload -> %s" % dest)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz rendering of the whole HPDT (one cluster per BPDT)."""
        lines = ["digraph hpdt {", '  rankdir="LR";']
        for (level, k), bpdt in sorted(self.bpdts.items()):
            prefix = "b%d_%d" % (level, k)
            lines.append('  subgraph "cluster_%s" {' % prefix)
            lines.append('    label="bpdt(%d,%d)";' % (level, k))
            for state in bpdt.states:
                lines.append('    %s_%s [label="%s\\n%s"];'
                             % (prefix, state.sid[1:], state.sid, state.role))
            for arc in bpdt.arcs:
                label = arc.label
                if arc.guard:
                    label += "\\n[%s]" % arc.guard
                if arc.actions:
                    label += "\\n{%s}" % ",".join(arc.actions)
                lines.append('    %s_%s -> %s_%s [label="%s"];'
                             % (prefix, arc.src.sid[1:], prefix,
                                arc.dst.sid[1:], label.replace('"', "'")))
            lines.append("  }")
        # Inter-BPDT edges: child START states hang off parent TRUE/NA.
        for bpdt_id, bpdt in sorted(self.bpdts.items()):
            parent_id = self.parent_of(bpdt_id)
            if parent_id is None:
                continue
            parent = self.bpdts[parent_id]
            anchor = (parent.true_state if self.is_left_child(bpdt_id)
                      else parent.na_state)
            lines.append('  b%d_%d_%s -> b%d_%d_%s [style=dashed];'
                         % (parent_id[0], parent_id[1], anchor.sid[1:],
                            bpdt_id[0], bpdt_id[1], bpdt.start.sid[1:]))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return "<Hpdt %r: %d bpdts, %d states>" % (
            self.query.text, self.bpdt_count, self.state_count)
