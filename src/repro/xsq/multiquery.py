"""Grouped execution of many XSQ queries in one pass over a stream.

Section 5 of the paper: "the HPDT used by XSQ has a simple and regular
structure, so that multiple HPDTs can be grouped using methods
suggested by [YFilter]".  This module is that grouping: one event pass
drives every compiled HPDT, so the parse — the dominant cost for
streaming workloads — is paid once no matter how many queries are
loaded, and each query still gets its own buffers, predicates and
document-ordered output.

Two result modes:

* :meth:`MultiQueryEngine.run` — per-query result lists (the
  subscription/dissemination shape);
* :meth:`MultiQueryEngine.run_merged` — one union result list in global
  document order, used by the schema-aware optimizer to evaluate a
  closure query it has expanded into several closure-free paths.

The merged mode stamps every buffered item from a *shared* sequence
counter, so document order across the member queries is just item
order.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import UnsupportedFeatureError
from repro.streaming.events import Event
from repro.streaming.sax_source import parse_events
from repro.xpath.ast import AggregateOutput, Query
from repro.xpath.parser import parse_query
from repro.xsq.aggregates import StatBuffer
from repro.xsq.buffers import OutputQueue
from repro.xsq.engine import RunStats
from repro.xsq.hpdt import Hpdt
from repro.xsq.matcher import MatcherRuntime


class MultiQueryEngine:
    """One pass, many queries.

    >>> engine = MultiQueryEngine(["/pub/book/name/text()",
    ...                            "/pub/year/text()"])
    >>> engine.run("<pub><book><name>N</name></book><year>2002</year></pub>")
    [['N'], ['2002']]
    """

    def __init__(self, queries: Sequence[Union[str, Query]], obs=None):
        if not queries:
            raise ValueError("MultiQueryEngine needs at least one query")
        self.obs = obs
        if obs is not None:
            with obs.span("compile", engine="multiquery",
                          queries=len(queries)):
                self.queries: List[Query] = [
                    parse_query(q) if isinstance(q, str) else q
                    for q in queries]
                with obs.span("hpdt-compile"):
                    self.hpdts: List[Hpdt] = [Hpdt(q) for q in self.queries]
        else:
            self.queries = [
                parse_query(q) if isinstance(q, str) else q for q in queries]
            self.hpdts = [Hpdt(q) for q in self.queries]
        self.last_stats: Optional[List[RunStats]] = None

    @classmethod
    def from_union(cls, text: str) -> "MultiQueryEngine":
        """Build from a top-level union expression ``q1 | q2 | ...``.

        Evaluate with :meth:`run_merged` for XPath union semantics
        (document order, one list).

        >>> engine = MultiQueryEngine.from_union("/r/a/text() | /r/b/text()")
        >>> engine.run_merged("<r><b>2</b><a>1</a></r>")
        ['2', '1']
        """
        from repro.xpath.parser import parse_query_set
        return cls(parse_query_set(text))

    @property
    def query_count(self) -> int:
        return len(self.queries)

    # -- execution ----------------------------------------------------------

    def _as_events(self, source) -> Iterable[Event]:
        if isinstance(source, (str, bytes)) or hasattr(source, "read"):
            return parse_events(source)
        return source

    def _build_runtimes(self, shared_seq: bool):
        counter = itertools.count() if shared_seq else None
        runtimes = []
        sinks: List[List[str]] = []
        stats: List[Optional[StatBuffer]] = []
        queues: List[OutputQueue] = []
        for query, hpdt in zip(self.queries, self.hpdts):
            sink: List[str] = []
            stat = (StatBuffer(query.output.name)
                    if isinstance(query.output, AggregateOutput) else None)
            queue = OutputQueue(
                sink,
                trace=(self.obs.events if self.obs is not None else None),
                seq_source=(counter.__next__ if counter is not None
                            else None),
                track_seqs=shared_seq)
            runtimes.append(MatcherRuntime(hpdt, sink, stat=stat,
                                           queue=queue))
            sinks.append(sink)
            stats.append(stat)
            queues.append(queue)
        return runtimes, sinks, stats, queues

    def _drive(self, source, shared_seq: bool):
        obs = self.obs
        stream_span = (obs.span("stream", engine="multiquery",
                                queries=len(self.queries))
                       if obs is not None else None)
        runtimes, sinks, stats, queues = self._build_runtimes(shared_seq)
        events = self._as_events(source)
        feeds = [runtime.feed for runtime in runtimes]
        count = 0
        if stream_span is None:
            for event in events:
                count += 1
                for feed in feeds:
                    feed(event)
        else:
            on_event = (obs.events.on_event if obs.events is not None
                        else None)
            with stream_span:
                for event in events:
                    count += 1
                    if on_event is not None:
                        on_event(event)
                    for feed in feeds:
                        feed(event)
        run_stats = []
        for runtime, queue in zip(runtimes, queues):
            runtime.finish()
            run_stats.append(RunStats(
                events=count,
                enqueued=queue.enqueued_total,
                cleared=queue.cleared_total,
                emitted=queue.emitted_total,
                peak_buffered_items=queue.peak_size,
                peak_instances=runtime.peak_instances,
                flushed=queue.flushed_total,
                uploaded=queue.uploaded_total))
        self.last_stats = run_stats
        if obs is not None:
            for run in run_stats:
                obs.record_run("multiquery", run,
                               seconds=stream_span.duration)
        return sinks, stats, queues

    def run(self, source) -> List[List[str]]:
        """Per-query results from a single pass over ``source``."""
        sinks, stats, _ = self._drive(source, shared_seq=False)[:3]
        results = []
        for sink, stat in zip(sinks, stats):
            results.append([stat.render()] if stat is not None else sink)
        return results

    def run_merged(self, source) -> List[str]:
        """Union of all member queries' results, in document order.

        Member queries must not be aggregates (a merged union of scalar
        aggregates has no document order); aggregate members raise
        :class:`UnsupportedFeatureError`.
        """
        for query in self.queries:
            if isinstance(query.output, AggregateOutput):
                raise UnsupportedFeatureError(
                    "run_merged cannot merge aggregate query %r"
                    % (query.text,))
        sinks, _, queues = self._drive(source, shared_seq=True)
        tagged: List[Tuple[int, str]] = []
        for sink, queue in zip(sinks, queues):
            tagged.extend(zip(queue.emitted_seqs, sink))
        tagged.sort(key=lambda pair: pair[0])
        return [value for _, value in tagged]

    def __repr__(self):
        return "<MultiQueryEngine %d queries>" % len(self.queries)
