"""Grouped execution of many XSQ queries in one pass over a stream.

Section 5 of the paper: "the HPDT used by XSQ has a simple and regular
structure, so that multiple HPDTs can be grouped using methods
suggested by [YFilter]".  This module is that grouping, in two layers:

* **one parse** — a single event pass drives every compiled HPDT, so
  tokenization (the dominant cost for streaming workloads) is paid once
  no matter how many queries are loaded;
* **one dispatch** — the BPDT transitions of all registered queries are
  factored into a shared tag-keyed :class:`~repro.xsq.dispatch.DispatchIndex`,
  so each ``B``/``T``/``E`` event is routed only to the machines whose
  transitions can actually fire on it.  Per-event work is then bounded
  by the fanout of the event's tag, not by the number of registered
  queries — the YFilter shared-NFA property.

Each query still gets its own buffers, predicate instances, depth
vectors and document-ordered, exactly-once output; only the *routing*
is shared.  ``shared_dispatch=False`` recovers the dense loop (every
event to every runtime) for A/B measurement — the bench harness
compares both against N independent engines.

Three result modes:

* :meth:`MultiQueryEngine.run` — per-query result lists (the
  subscription/dissemination shape);
* :meth:`MultiQueryEngine.iter_results` — incremental
  ``(query_index, value)`` pairs as results are determined;
* merged (via :func:`repro.compile` on a union query, or the
  schema-aware optimizer) — one union result list in global document
  order.  The merged mode stamps every buffered item from a *shared*
  sequence counter, so document order across the member queries is
  just item order.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import FastPathUnsupportedError, UnsupportedFeatureError
from repro.streaming.events import Event
from repro.xpath.ast import AggregateOutput, Query
from repro.xsq.aggregates import StatBuffer
from repro.xsq.buffers import OutputQueue
from repro.xsq.compile_cache import compile_hpdt
from repro.xsq.dispatch import DispatchIndex
from repro.xsq.engine import RunStats
from repro.xsq.fastpath import FastRuntime, TagTable, compile_fastplan
from repro.xsq.hpdt import Hpdt
from repro.xsq.matcher import MatcherRuntime


class MultiQueryEngine:
    """One pass, many queries, shared event dispatch.

    ``obs`` accepts an :class:`repro.obs.Observability` bundle (spans,
    run stats, dispatch-index gauges and per-event fanout histograms).
    ``cache`` is forwarded to :func:`repro.xsq.compile_cache.compile_hpdt`
    (``None`` = process default, ``False`` = compile fresh).
    ``shared_dispatch=False`` disables the tag index and feeds every
    event to every runtime — the pre-index behaviour, kept as the
    measured baseline.

    >>> engine = MultiQueryEngine(["/pub/book/name/text()",
    ...                            "/pub/year/text()"])
    >>> engine.run("<pub><book><name>N</name></book><year>2002</year></pub>")
    [['N'], ['2002']]
    """

    name = "multiquery"

    def __init__(self, queries: Sequence[Union[str, Query]], obs=None, *,
                 shared_dispatch: bool = True, cache=None,
                 codegen: bool = True):
        if not queries:
            raise ValueError("MultiQueryEngine needs at least one query")
        self.obs = obs
        self.codegen_enabled = codegen
        if obs is not None:
            with obs.span("compile", engine=self.name, queries=len(queries)):
                with obs.span("hpdt-compile"):
                    self.hpdts: List[Hpdt] = [
                        compile_hpdt(q, cache=cache, obs=obs)
                        for q in queries]
        else:
            self.hpdts = [compile_hpdt(q, cache=cache) for q in queries]
        self.queries: List[Query] = [h.query for h in self.hpdts]
        self.index: Optional[DispatchIndex] = (
            DispatchIndex(self.hpdts) if shared_dispatch else None)
        # Whole-group fast path: when every member lowers to a FastPlan
        # against one shared TagTable (and nothing demands per-event
        # instrumentation), run() partitions each parser batch through
        # the id-keyed routes and drives compiled FastRuntimes instead
        # of the interpreted matchers.
        self._fast = self._try_fastplans()
        self.last_stats: Optional[List[RunStats]] = None
        if obs is not None and self.index is not None:
            shape = self.index.stats()
            metrics = obs.metrics
            metrics.gauge(
                "repro_dispatch_tag_buckets",
                "distinct element tags in the shared dispatch index",
                engine=self.name).set(shape["buckets"])
            metrics.gauge(
                "repro_dispatch_greedy_queries",
                "queries routed every event (wildcards, element output)",
                engine=self.name).set(shape["greedy"])
            metrics.gauge(
                "repro_dispatch_max_bucket_queries",
                "largest per-tag fanout in the shared dispatch index",
                engine=self.name).set(shape["max_bucket"])

    @classmethod
    def from_union(cls, text: str) -> "MultiQueryEngine":
        """Removed: use ``repro.compile(text)`` on the union query."""
        raise DeprecationWarning(
            "MultiQueryEngine.from_union was removed; use repro.compile() "
            "which handles union queries directly")

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def stats(self) -> Optional[RunStats]:
        """Aggregate stats from the most recent run (uniform ``.stats``).

        Per-query breakdowns stay available on :attr:`last_stats`.
        """
        if self.last_stats is None:
            return None
        return RunStats.merged(self.last_stats)

    # -- execution ----------------------------------------------------------

    def _as_events(self, source) -> Iterable[Event]:
        from repro.streaming.source import coerce_source
        return coerce_source(source).events()

    def _as_batches(self, source, tags: TagTable):
        from repro.streaming.source import coerce_source
        return coerce_source(source).batches(tags)

    def _try_fastplans(self):
        """Lower every member for the grouped fast path, or None.

        All members must share one :class:`TagTable` so the dispatch
        index's id routes agree with every plan's transition-row keys;
        a single unsupported member (closure, not()/or(), path
        predicate) keeps the whole group interpreted — mixing runtimes
        would reorder nothing but complicate the invariants for no
        measured win on real workloads, where grouped queries are
        structurally alike.  Per-member outcomes (fallback slugs,
        kernel notes) are recorded on :attr:`member_fallbacks` /
        :attr:`member_kernel_notes` either way, so ``explain()`` can
        show *which* member kept the group interpreted.
        """
        self.member_fallbacks: List[Optional[str]] = \
            [None] * len(self.hpdts)
        self.member_kernel_notes: List[Optional[str]] = \
            [None] * len(self.hpdts)
        self.fast_group_note: Optional[str] = None
        if self.obs is not None:
            self.fast_group_note = ("per-event observability needs the "
                                    "interpreted runtimes")
            return None
        if self.index is None:
            self.fast_group_note = ("shared_dispatch=False pins the "
                                    "interpreted dense loop")
            return None
        tags = TagTable()
        plans = []
        supported = True
        for i, hpdt in enumerate(self.hpdts):
            try:
                plans.append(compile_fastplan(hpdt, tags))
            except FastPathUnsupportedError as exc:
                self.member_fallbacks[i] = exc.reason
                supported = False
        if not supported:
            bad = sum(1 for slug in self.member_fallbacks
                      if slug is not None)
            self.fast_group_note = (
                "%d member(s) outside the fast-path class keep the "
                "group interpreted" % bad)
            return None
        if self.codegen_enabled:
            from repro.xsq.codegen import compile_kernel
            kernels = []
            for i, plan in enumerate(plans):
                kernel, note = compile_kernel(plan)
                kernels.append(kernel)
                self.member_kernel_notes[i] = note
        else:
            kernels = [None] * len(plans)
            self.member_kernel_notes = \
                ["codegen disabled (codegen=False)"] * len(plans)
        routes, default = self.index.id_routes(tags)
        return tags, plans, kernels, routes, default

    def member_selection_notes(self) -> List[str]:
        """One engine-selection line per member query, for explain()."""
        notes = []
        for i, query in enumerate(self.queries):
            if self._fast is not None:
                kernel_note = self.member_kernel_notes[i]
                notes.append("member %d: %s — grouped fast pump (%s)"
                             % (i, query.text, kernel_note))
            elif self.member_fallbacks[i] is not None:
                notes.append(
                    "member %d: %s — fast path not selected: %s"
                    % (i, query.text, self.member_fallbacks[i]))
            else:
                notes.append(
                    "member %d: %s — fast-capable; interpreted because "
                    "%s" % (i, query.text, self.fast_group_note))
        return notes

    def _run_fast(self, source, sinks):
        """run() on compiled runtimes: batch, partition by tag id, drive.

        Events are partitioned into per-runtime sub-batches with one
        int-keyed route lookup each, then each runtime interprets its
        sub-batch in one call — the per-event Python dispatch of
        ``_pump_dispatch`` collapses into ``len(batch)`` appends plus a
        handful of ``run_batch`` calls per chunk.
        """
        tags, plans, kernels, routes, default = self._fast
        if sinks is None:
            sinks = [[] for _ in self.queries]
        elif len(sinks) != len(self.queries):
            raise ValueError("expected %d sinks, got %d"
                             % (len(self.queries), len(sinks)))
        runtimes: List[FastRuntime] = []
        stats: List[Optional[StatBuffer]] = []
        for plan, hpdt, query, sink, kernel in zip(plans, self.hpdts,
                                                   self.queries, sinks,
                                                   kernels):
            stat = (StatBuffer(query.output.name)
                    if isinstance(query.output, AggregateOutput) else None)
            runtimes.append(FastRuntime(plan, hpdt, sink, stat=stat,
                                        kernel=kernel))
            stats.append(stat)
        routes_get = routes.get
        subs: List[list] = [[] for _ in runtimes]
        count = 0
        for batch in self._as_batches(source, tags):
            count += len(batch)
            for event in batch:
                for i in routes_get(event[1], default):
                    subs[i].append(event)
            for i, sub in enumerate(subs):
                if sub:
                    runtimes[i].run_batch(sub)
                    del sub[:]
        run_stats = []
        for runtime in runtimes:
            runtime.finish()
            queue = runtime.queue
            run_stats.append(RunStats(
                events=count,
                enqueued=queue.enqueued_total,
                cleared=queue.cleared_total,
                emitted=queue.emitted_total,
                peak_buffered_items=queue.peak_size,
                peak_instances=runtime.peak_instances,
                flushed=queue.flushed_total,
                uploaded=queue.uploaded_total))
        self.last_stats = run_stats
        results = []
        for sink, stat in zip(sinks, stats):
            results.append([stat.render()] if stat is not None else sink)
        return results

    def _build_runtimes(self, shared_seq: bool, sinks=None):
        counter = itertools.count() if shared_seq else None
        if sinks is None:
            sinks = [[] for _ in self.queries]
        elif len(sinks) != len(self.queries):
            raise ValueError("expected %d sinks, got %d"
                             % (len(self.queries), len(sinks)))
        runtimes = []
        stats: List[Optional[StatBuffer]] = []
        queues: List[OutputQueue] = []
        accounting = (self.obs.accounting if self.obs is not None else None)
        account_labels: List[str] = []
        if accounting is not None:
            # Duplicate member queries must not share a ledger (each
            # queue numbers its items independently).
            seen: dict = {}
            for query in self.queries:
                n = seen.get(query.text, 0)
                seen[query.text] = n + 1
                account_labels.append(
                    query.text if n == 0
                    else "%s #%d" % (query.text, n + 1))
        for index, (query, hpdt, sink) in enumerate(
                zip(self.queries, self.hpdts, sinks)):
            stat = (StatBuffer(query.output.name)
                    if isinstance(query.output, AggregateOutput) else None)
            queue = OutputQueue(
                sink,
                trace=(self.obs.events if self.obs is not None else None),
                seq_source=(counter.__next__ if counter is not None
                            else None),
                track_seqs=shared_seq,
                account=(accounting.account(account_labels[index],
                                            engine=self.name)
                         if accounting is not None else None))
            runtimes.append(MatcherRuntime(hpdt, sink, stat=stat,
                                           queue=queue))
            stats.append(stat)
            queues.append(queue)
        return runtimes, sinks, stats, queues

    def _pump(self, events, runtimes) -> int:
        """Dense loop: every event to every runtime (the baseline)."""
        count = 0
        feeds = [runtime.feed for runtime in runtimes]
        for event in events:
            count += 1
            for feed in feeds:
                feed(event)
        return count

    def _pump_dispatch(self, events, runtimes) -> int:
        """Sparse loop: route each event through the shared tag index.

        ``TextEvent.tag`` is the *enclosing* element's tag and an end
        event repeats its begin's tag, so one ``routes[tag]`` lookup
        serves all three kinds and every runtime sees a begin/end-
        balanced event subsequence (its sparse stack stays consistent).
        """
        count = 0
        routes_get = self.index.routes.get
        default = self.index.default
        begins = [runtime.on_begin for runtime in runtimes]
        texts = [runtime.on_text for runtime in runtimes]
        ends = [runtime.on_end for runtime in runtimes]
        for event in events:
            count += 1
            targets = routes_get(event.tag, default)
            if targets:
                kind = event.kind
                table = (begins if kind == "begin"
                         else ends if kind == "end" else texts)
                for i in targets:
                    table[i](event)
        return count

    def _pump_observed(self, events, runtimes, obs) -> int:
        """Instrumented variants of the two loops above."""
        count = 0
        on_event = obs.event_hook()
        if self.index is None:
            feeds = [runtime.feed for runtime in runtimes]
            for event in events:
                count += 1
                if on_event is not None:
                    on_event(event)
                for feed in feeds:
                    feed(event)
            return count
        from repro.obs.metrics import FANOUT_BUCKETS
        fanout = obs.metrics.histogram(
            "repro_dispatch_fanout_queries",
            "runtimes touched per stream event under shared dispatch",
            buckets=FANOUT_BUCKETS, engine=self.name)
        routes_get = self.index.routes.get
        default = self.index.default
        begins = [runtime.on_begin for runtime in runtimes]
        texts = [runtime.on_text for runtime in runtimes]
        ends = [runtime.on_end for runtime in runtimes]
        for event in events:
            count += 1
            if on_event is not None:
                on_event(event)
            targets = routes_get(event.tag, default)
            fanout.observe(len(targets))
            if targets:
                kind = event.kind
                table = (begins if kind == "begin"
                         else ends if kind == "end" else texts)
                for i in targets:
                    table[i](event)
        return count

    def _drive(self, source, shared_seq: bool, sinks=None):
        obs = self.obs
        runtimes, sinks, stats, queues = self._build_runtimes(shared_seq,
                                                              sinks)
        events = self._as_events(source)
        if obs is None:
            if self.index is not None:
                count = self._pump_dispatch(events, runtimes)
            else:
                count = self._pump(events, runtimes)
            stream_span = None
        else:
            with obs.span("stream", engine=self.name,
                          queries=len(self.queries)) as stream_span:
                profiler = obs.profiler
                if profiler is not None:
                    # Profiled grouped pump: same routing as
                    # _pump_dispatch, plus per-query attribution.
                    labels = [query.text for query in self.queries]
                    routes_get = (self.index.routes.get
                                  if self.index is not None else None)
                    default = (self.index.default
                               if self.index is not None else None)
                    count = profiler.pump_dispatch(
                        self.name, events, runtimes, labels,
                        routes_get, default, on_event=obs.event_hook())
                else:
                    count = self._pump_observed(events, runtimes, obs)
        run_stats = []
        profiler = obs.profiler if obs is not None else None
        for runtime, queue in zip(runtimes, queues):
            if profiler is not None:
                profiler.timed_finish(runtime)
            else:
                runtime.finish()
            # ``events`` is the *global* stream length for every member:
            # all queries share the single pass even when the dispatch
            # index withheld most events from their runtimes.
            run_stats.append(RunStats(
                events=count,
                enqueued=queue.enqueued_total,
                cleared=queue.cleared_total,
                emitted=queue.emitted_total,
                peak_buffered_items=queue.peak_size,
                peak_instances=runtime.peak_instances,
                flushed=queue.flushed_total,
                uploaded=queue.uploaded_total))
        self.last_stats = run_stats
        if obs is not None:
            for run in run_stats:
                obs.record_run(self.name, run,
                               seconds=stream_span.duration)
        return sinks, stats, queues

    def run(self, source, sinks=None) -> List[List[str]]:
        """Per-query results from a single pass over ``source``.

        ``sinks`` optionally supplies one collector per query (anything
        with ``append``), mirroring the single-query engines' ``sink=``;
        results stream into them during the pass.
        """
        if self._fast is not None:
            return self._run_fast(source, sinks)
        sinks, stats, _ = self._drive(source, shared_seq=False,
                                      sinks=sinks)[:3]
        results = []
        for sink, stat in zip(sinks, stats):
            results.append([stat.render()] if stat is not None else sink)
        return results

    def iter_results(self, source) -> Iterator[Tuple[int, object]]:
        """Yield ``(query_index, value)`` pairs as they are determined.

        Values for different queries interleave in stream order.
        Aggregate members yield their single final value after the
        stream ends (an aggregate is undetermined until then).
        """
        runtimes, sinks, stats, queues = self._build_runtimes(False)
        events = self._as_events(source)
        obs = self.obs
        on_event = obs.event_hook() if obs is not None else None
        index = self.index
        if index is not None:
            routes_get = index.routes.get
            default = index.default
            begins = [runtime.on_begin for runtime in runtimes]
            texts = [runtime.on_text for runtime in runtimes]
            ends = [runtime.on_end for runtime in runtimes]
        count = 0
        for event in events:
            count += 1
            if on_event is not None:
                on_event(event)
            if index is None:
                targets = range(len(runtimes))
                for runtime in runtimes:
                    runtime.feed(event)
            else:
                targets = routes_get(event.tag, default)
                if targets:
                    kind = event.kind
                    table = (begins if kind == "begin"
                             else ends if kind == "end" else texts)
                    for i in targets:
                        table[i](event)
            for i in targets:
                sink = sinks[i]
                if sink and stats[i] is None:
                    for value in sink:
                        yield (i, value)
                    # Drain (don't retain) so unbounded streams run in
                    # bounded memory.
                    sink.clear()
        for i, runtime in enumerate(runtimes):
            runtime.finish()
            stat = stats[i]
            if stat is not None:
                yield (i, stat.render())
            else:
                for value in sinks[i]:
                    yield (i, value)
                sinks[i].clear()
        run_stats = []
        for runtime, queue in zip(runtimes, queues):
            run_stats.append(RunStats(
                events=count,
                enqueued=queue.enqueued_total,
                cleared=queue.cleared_total,
                emitted=queue.emitted_total,
                peak_buffered_items=queue.peak_size,
                peak_instances=runtime.peak_instances,
                flushed=queue.flushed_total,
                uploaded=queue.uploaded_total))
        self.last_stats = run_stats

    def _run_merged(self, source, sink=None) -> List[str]:
        """Union of all member queries' results, in document order.

        Member queries must not be aggregates (a merged union of scalar
        aggregates has no document order); aggregate members raise
        :class:`UnsupportedFeatureError`.
        """
        for query in self.queries:
            if isinstance(query.output, AggregateOutput):
                raise UnsupportedFeatureError(
                    "merged union cannot include aggregate query %r"
                    % (query.text,))
        sinks, _, queues = self._drive(source, shared_seq=True)
        tagged: List[Tuple[int, str]] = []
        for member_sink, queue in zip(sinks, queues):
            tagged.extend(zip(queue.emitted_seqs, member_sink))
        tagged.sort(key=lambda pair: pair[0])
        if sink is None:
            sink = []
        sink.extend(value for _, value in tagged)
        return sink

    def run_merged(self, source) -> List[str]:
        """Removed: use ``repro.compile()`` on a union query instead."""
        raise DeprecationWarning(
            "MultiQueryEngine.run_merged was removed; compile the union "
            "with repro.compile() and call .run()")

    def push(self, merged: bool = False):
        """Open a push handle over all member queries for one document.

        The returned :class:`~repro.xsq.push.MultiPushHandle` exposes
        ``feed_events(events)`` yielding ``(query_index, value)`` pairs
        incrementally (the :meth:`iter_results` shape), or — with
        ``merged=True`` — buffering for a document-order union returned
        by ``finish()`` (the merged shape).  Merged mode rejects
        aggregate members for the same reason :meth:`_run_merged` does.
        """
        if merged:
            for query in self.queries:
                if isinstance(query.output, AggregateOutput):
                    raise UnsupportedFeatureError(
                        "merged union cannot include aggregate query %r"
                        % (query.text,))
        from repro.xsq.push import MultiPushHandle
        return MultiPushHandle(self, merged=merged)

    def __repr__(self):
        return "<MultiQueryEngine %d queries>" % len(self.queries)
