"""Regenerate the paper's automaton figures from the implementation.

Figures 5–12 of the paper are drawings of the BPDT templates and the
running example's HPDT.  Because this reproduction materializes those
automata as data (:class:`repro.xsq.bpdt.Bpdt`,
:class:`repro.xsq.hpdt.Hpdt`), the figures can be *regenerated* from
the code — the checked-in ``docs/FIGURES.md`` is produced by this
module and a test asserts it is current, so the documentation cannot
drift from the implementation.

Usage::

    python -m repro.xsq.paperfigs            # print to stdout
    python -m repro.xsq.paperfigs --write    # refresh docs/FIGURES.md
"""

from __future__ import annotations

import os
from typing import List

from repro.xpath.parser import parse_query
from repro.xsq.bpdt import Bpdt
from repro.xsq.hpdt import Hpdt

#: (figure label, description, location step) for each template figure.
TEMPLATE_FIGURES = (
    ("Figure 5", "category 1: attribute comparison", "/tag[@attr=1]"),
    ("Figure 6", "category 2: own-text comparison", "/tag[text()=1]"),
    ("Figure 7", "category 4: child-attribute comparison",
     "/tag[child@attr=1]"),
    ("Figure 8", "category 3: child existence", "/tag[child]"),
    ("Figure 9", "category 5: child-text comparison", "/tag[child=1]"),
)

FIGURE10_QUERY = "/pub[year>2000]"
FIGURE11_QUERY = "//pub[year>2000]//book[author]//name/text()"


def _template_section(label: str, description: str, step_text: str) -> str:
    step = parse_query(step_text).steps[0]
    bpdt = Bpdt(step, (1, 1))
    lines = ["## %s — template for `%s` (%s)" % (label, step_text,
                                                 description), ""]
    lines.append("```")
    lines.append(bpdt.describe())
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def render_figures() -> str:
    """The full FIGURES.md content."""
    parts: List[str] = [
        "# The paper's automata, regenerated from the code",
        "",
        "Produced by `python -m repro.xsq.paperfigs --write`; the test",
        "suite asserts this file matches the implementation, so these",
        "are the templates the engines actually run, not drawings.",
        "",
        "States are shown as `$n`; `START`/`TRUE`/`NA` follow the",
        "paper's roles.  Arc notation: `<tag>` begin events, `</tag>`",
        "end events, `<tag.text()>` text events, `[guard]` predicates,",
        "`{action}` buffer operations, a trailing `=` marks a closure",
        "transition, and `-//->` is the closure self-loop (Section 4.2).",
        "",
    ]
    for label, description, step_text in TEMPLATE_FIGURES:
        parts.append(_template_section(label, description, step_text))
    # Figure 10: single-step query with catchall output.
    hpdt10 = Hpdt(FIGURE10_QUERY)
    parts.append("## Figure 10 — BPDT for `%s` (catchall output)\n"
                 % FIGURE10_QUERY)
    parts.append("```\n%s\n```\n" % hpdt10.describe())
    # Figure 12: the root template.
    parts.append("## Figure 12 — the root BPDT\n")
    parts.append("```\n%s\n```\n" % Bpdt(None, (0, 0)).describe())
    # Figure 11: the running example's full HPDT.
    hpdt11 = Hpdt(FIGURE11_QUERY)
    parts.append("## Figure 11 — HPDT for `%s`\n" % FIGURE11_QUERY)
    parts.append("```\n%s\n```\n" % hpdt11.describe())
    parts.append("GraphViz rendering of the same HPDT: run "
                 "`xsq --dot \"%s\"`.\n" % FIGURE11_QUERY)
    parts.append(MEMORY_FIGURES_SECTION)
    parts.append(THROUGHPUT_FIGURES_SECTION)
    parts.append(PHASE_FIGURE_SECTION)
    return "\n".join(parts)


#: Figures 19/20 are measured rather than drawn; this section points at
#: the accountant-backed pipeline that records them.
MEMORY_FIGURES_SECTION = """\
## Figures 19 & 20 — memory vs input size

The memory figures are measured, not drawn: the resource accountant
(see [OBSERVABILITY.md](OBSERVABILITY.md#accounting--audit-reproobsaccounting))
tracks per-query peak buffer occupancy on a deterministic event-count
clock, and `benchmarks/bench_memory_accounting.py` records the
Figure 19 (DBLP, `/dblp/inproceedings[author]/title/text()`) and
Figure 20 (recursive, `//pub[year]//book[@id]/title/text()`) workloads
into the committed `BENCH_memory.json`.  The committed numbers carry
the figures' claims: Figure 19's peak occupancy stays at 1 buffered
item at every input size, and Figure 20's closure workload stays
bounded by the largest element (~100 items) instead of growing with
the document.  Watch either live with
`xsq top QUERY FILE --audit`.
"""

#: Figures 15-17 are likewise measured; the throughput pipeline and
#: the compiled fast path that carries it are documented separately.
THROUGHPUT_FIGURES_SECTION = """\
## Figures 15-17 — throughput

The throughput figures are carried by the compiled fast path — these
same automata lowered to integer-indexed transition tables (see
[PERFORMANCE.md](PERFORMANCE.md)).  `benchmarks/bench_throughput.py`
measures the Figure 15 corpora with each one's evaluation query and
records fast / XSQ-NC / XSQ-F / parse-only MB/s into the committed
`BENCH_throughput.json`.
"""

#: Figure 18 is measured two ways: the bench harness's phase timers
#: and the execution profiler's live attribution.
PHASE_FIGURE_SECTION = """\
## Figure 18 — where the time goes

Figure 18's parse / automaton / buffer breakdown is reproducible two
ways: offline by the bench harness's phase timers (`python -m
repro.bench fig18`), and live from the execution profiler —
`xsq profile QUERY FILE --fig18` attributes the actual run's wall
time per phase (exactly on the interpreted engines, by batch-sampling
on the compiled fast path) and reports the same three shares, so the
figure can be re-derived from any single profiled run instead of a
dedicated bench pass.  See
[OBSERVABILITY.md](OBSERVABILITY.md#execution-profiler-reproobsprofile--explain-analyze).
"""


def figures_path() -> str:
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "docs", "FIGURES.md")


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.xsq.paperfigs",
        description="Regenerate the paper's automaton figures.")
    parser.add_argument("--write", action="store_true",
                        help="write docs/FIGURES.md instead of stdout")
    args = parser.parse_args(argv)
    content = render_figures()
    if args.write:
        with open(figures_path(), "w", encoding="utf-8") as out:
            out.write(content)
        print("wrote %s" % figures_path())
    else:
        print(content)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
