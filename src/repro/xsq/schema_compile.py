"""Schema-aware HPDT compilation: the paper's Section 5 future work,
taken past the AST rewrites of :mod:`repro.xsq.schema_opt` and into the
compiled runtimes.

Where ``schema_opt`` rewrites the *query* (emptiness, guaranteed
predicates, closure expansion), this module analyzes the query *against
the DTD's content models* and hands the results to the HPDT lowering
layers:

* **Transition pruning** — tags the content model forbids at a step's
  position are dropped from the fast path's transition rows, and
  wildcard steps with a finite schema-allowed tag set are enumerated
  into named entries (:func:`analyze_fastpath` → ``allowed`` /
  ``child_pool``).
* **Eager resolution** — when the DTD proves that a predicate's witness
  child always precedes every element the query could descend into
  (required-and-ordered in the content model, Koch et al.'s
  schema-based scheduling), the state is marked resolve-on-arrival: by
  the time a match advances past it, the predicate *must* already be
  decided, so matches upload immediately instead of parking in a BPDT
  buffer (``eager_gate``).  The interpreted engines get the runtime
  dual (:func:`analyze_runtime`): a dead-tag watch that falsifies a
  still-pending predicate the moment a sibling proves the witness can
  no longer arrive.
* **Static no-buffer allocation** — a plan whose every non-begin
  predicate is eagerly resolved never creates a chained buffer item at
  all (``no_buffer``), which ``explain()`` surfaces as
  ``buffering: none (schema)``.

Everything here is *advisory*: analyses return ``None`` whenever the
schema cannot prove anything, and every consumer must behave
identically with no schema attached.  Soundness is always stated
relative to schema-valid documents — a stream that violates the
declared DTD may see pruned transitions or early falsifications the
schema said were impossible (the same caveat every schema-based
optimizer carries; validate with ``--check``/``--dtd`` when in doubt).

This module is imported lazily by the engines (only when a ``schema``
is actually passed), so the schema-off path never pays for it — not
even the import.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.streaming.dtd import ContentModel, Dtd, Nothing, parse_dtd
from repro.xpath.ast import (
    ChildAttrCompare,
    ChildAttrExists,
    ChildExists,
    ChildTextCompare,
    Predicate,
    Query,
)
from repro.xsq import schema_opt

#: Abort content-model state exploration past this many derivative
#: states (conservative: the analysis then proves nothing).
STATE_LIMIT = 200

#: Cap on enumerating a wildcard step's schema-allowed tags into named
#: transition-row entries; wider sets keep the wildcard default.
MAX_WILDCARD_TAGS = 32


# ---------------------------------------------------------------------------
# Schema identity
# ---------------------------------------------------------------------------

def _fingerprint(dtd: Dtd) -> str:
    """Stable identity of a DTD's *content*, for compile-cache keys.

    Two textually different DTDs that declare the same elements,
    content models and attributes fingerprint identically; any
    difference that could change an optimization decision changes it.
    """
    parts: List[str] = ["root=%s" % (dtd.root,)]
    for name in sorted(dtd.elements):
        decl = dtd.elements[name]
        parts.append("%s=%r|mixed=%s" % (name, decl.content.expr,
                                         decl.content.mixed))
        for att_name in sorted(decl.attributes):
            att = decl.attributes[att_name]
            parts.append("%s@%s:%s:%s:%s:%s"
                         % (name, att.name, att.att_type, att.mode,
                            att.default, att.enum_values))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


class CompiledSchema:
    """A DTD prepared for compile-time use.

    Wraps the parsed :class:`~repro.streaming.dtd.Dtd` with a stable
    :attr:`fingerprint` (the compile-cache key token) and memoized
    structural queries, so one schema analyzed against many queries
    pays each content-model exploration once.
    """

    __slots__ = ("dtd", "fingerprint", "_dead", "_children")

    def __init__(self, dtd: Dtd):
        self.dtd = dtd
        self.fingerprint = _fingerprint(dtd)
        self._dead: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._children: Dict[str, FrozenSet[str]] = {}

    def allowed_children(self, tag: str) -> FrozenSet[str]:
        got = self._children.get(tag)
        if got is None:
            got = schema_opt._allowed_children(self.dtd, tag)
            self._children[tag] = got
        return got

    def dead_tags(self, parent_tag: str, witness: str) -> FrozenSet[str]:
        """Child tags whose begin proves ``witness`` can no longer
        arrive inside ``parent_tag`` (see :func:`dead_witness_tags`)."""
        key = (parent_tag, witness)
        got = self._dead.get(key)
        if got is None:
            decl = self.dtd.elements.get(parent_tag)
            got = (dead_witness_tags(decl.content, witness)
                   if decl is not None else frozenset())
            self._dead[key] = got
        return got

    def __repr__(self):
        return "<CompiledSchema %s %d elements>" % (self.fingerprint,
                                                    len(self.dtd.elements))


def coerce_schema(schema: Union[None, str, os.PathLike, Dtd,
                                CompiledSchema]) -> Optional[CompiledSchema]:
    """Accept the ``schema=`` argument in every shape the API allows.

    ``None`` passes through; a :class:`CompiledSchema` is returned
    as-is; a :class:`~repro.streaming.dtd.Dtd` is wrapped; a string is
    DTD text when it contains a declaration (``<!``), otherwise a file
    path to read.
    """
    if schema is None:
        return None
    if isinstance(schema, CompiledSchema):
        return schema
    if isinstance(schema, Dtd):
        return CompiledSchema(schema)
    if isinstance(schema, os.PathLike):
        schema = os.fspath(schema)
    if isinstance(schema, str):
        if "<!" in schema:
            return CompiledSchema(parse_dtd(schema))
        if os.path.exists(schema):
            with open(schema, "r", encoding="utf-8") as handle:
                return CompiledSchema(parse_dtd(handle.read()))
        raise ReproError(
            "schema %r is neither DTD text (no '<!' declaration) nor an "
            "existing file path" % (schema[:80],))
    raise ReproError("unsupported schema object: %r" % (type(schema),))


# ---------------------------------------------------------------------------
# Content-model reasoning
# ---------------------------------------------------------------------------

def dead_witness_tags(model: ContentModel, witness: str,
                      state_limit: int = STATE_LIMIT) -> FrozenSet[str]:
    """Child tags after which ``witness`` can never follow.

    A tag ``t`` is *dead* for ``witness`` when every reachable
    content-model state that consumes ``t`` lands in a state from which
    no continuation contains ``witness`` — e.g. in ``(year?, publisher,
    book*)`` the tags ``year``, ``publisher`` and ``book`` are all dead
    for ``year``: once any of them has been read, ``year`` is over.

    Conservative everywhere: ANY content, a witness outside the
    alphabet, or exceeding ``state_limit`` reachable derivative states
    all answer the empty set (prove nothing).  Mixed content like
    ``(#PCDATA | a | b)*`` naturally yields the empty set too, since
    every tag can always recur.
    """
    alphabet = model.expr.all_tags()
    if "*" in alphabet or witness not in alphabet:
        return frozenset()
    init = model.initial_state()
    states: Dict[str, object] = {repr(init): init}
    edges: Dict[str, List[Tuple[str, str]]] = {}
    frontier = [init]
    while frontier:
        state = frontier.pop()
        key = repr(state)
        out: List[Tuple[str, str]] = []
        for tag in alphabet:
            nxt = model.advance(state, tag)
            if isinstance(nxt, Nothing):
                continue
            nkey = repr(nxt)
            out.append((tag, nkey))
            if nkey not in states:
                states[nkey] = nxt
                if len(states) > state_limit:
                    return frozenset()
                frontier.append(nxt)
        edges[key] = out
    # canreach(S): the witness can still be consumed from S (now, or
    # after any sequence of other children).  Fixpoint over the state
    # graph.
    canreach = {
        key: not isinstance(model.advance(state, witness), Nothing)
        for key, state in states.items()}
    changed = True
    while changed:
        changed = False
        for key, out in edges.items():
            if not canreach[key] \
                    and any(canreach[nkey] for _tag, nkey in out):
                canreach[key] = True
                changed = True
    dead = set()
    for tag in alphabet:
        if all(not canreach[nkey]
               for out in edges.values()
               for t, nkey in out if t == tag):
            dead.add(tag)
    return frozenset(dead)


def _named_witness(predicate: Predicate) -> Optional[str]:
    """The witness child tag of a plain category-3/4/5 predicate.

    ``None`` for anything else: wildcard children prove nothing, and
    ``not()``/``or()``/path predicates invert or compound the witness
    semantics (a dead witness makes ``not(F)`` *true*), so the
    dead-tag machinery conservatively skips them.
    """
    if type(predicate) in (ChildExists, ChildAttrExists,
                           ChildAttrCompare, ChildTextCompare) \
            and predicate.child != "*":
        return predicate.child
    return None


# ---------------------------------------------------------------------------
# Interpreted-runtime analysis: dead-tag watches
# ---------------------------------------------------------------------------

def analyze_runtime(schema: CompiledSchema, query: Query
                    ) -> Optional[Dict[Tuple[int, str], tuple]]:
    """Dead-tag watch map for the interpreted runtimes.

    ``{(step_index, element_tag): ((pred_index, dead_tags), ...)}`` —
    when an element bound to ``step_index`` with tag ``element_tag``
    sees a direct child whose tag is in ``dead_tags`` while predicate
    ``pred_index`` is still undecided, the predicate's witness can no
    longer arrive and the instance resolves False on the spot (instead
    of at the element's end), releasing every buffered item it governs.

    Category-5 predicates exclude the witness tag itself from the dead
    set: their deciding text events arrive *after* the witness child's
    begin.  Categories 3/4 keep it — the begin-watch runs first, so a
    still-pending predicate at that point means the witness test failed
    and, the tag being dead, no later witness exists.
    """
    dtd = schema.dtd
    out: Dict[Tuple[int, str], tuple] = {}
    for index, step in enumerate(query.steps):
        watched = [
            (pred_index, predicate, _named_witness(predicate))
            for pred_index, predicate in enumerate(step.predicates)
            if _named_witness(predicate) is not None]
        if not watched:
            continue
        for tag in dtd.elements:
            if not step.matches_tag(tag):
                continue
            entries = []
            for pred_index, predicate, witness in watched:
                dead = schema.dead_tags(tag, witness)
                if predicate.category == 5:
                    dead = dead - {witness}
                if dead:
                    entries.append((pred_index, dead))
            if entries:
                out[(index, tag)] = tuple(entries)
    return out or None


# ---------------------------------------------------------------------------
# Fast-path analysis: pruning sets, eager gates, no-buffer proof
# ---------------------------------------------------------------------------

class FastSchemaInfo:
    """What the schema proves about a child-axis query, for lowering.

    ``allowed[m]``
        tags the schema permits step ``m`` to bind (the pruning set for
        that state's match entries; a finite set narrows a wildcard
        step into named transitions).
    ``child_pool[m]``
        every tag the schema allows as a direct child of step ``m-1``'s
        bindings — watch entries for witnesses outside it can never
        fire and are pruned (``child_pool[0]`` is None: no parent).
    ``eager_gate[m]``
        predicate indices of step ``m-1`` that are *resolved on
        arrival*: whenever a step-``m`` child begins, the schema proves
        the predicate has already been decided, so a still-pending
        instance can only mean False and the descent is skipped.
    ``no_buffer``
        True when every non-begin predicate of every step is eagerly
        resolved — output items are always born fully resolved and the
        plan allocates no predicate buffering at all.
    """

    __slots__ = ("fingerprint", "allowed", "child_pool", "eager_gate",
                 "no_buffer")

    def __init__(self, fingerprint: str,
                 allowed: Tuple[FrozenSet[str], ...],
                 child_pool: Tuple[Optional[FrozenSet[str]], ...],
                 eager_gate: Tuple[FrozenSet[int], ...],
                 no_buffer: bool):
        self.fingerprint = fingerprint
        self.allowed = allowed
        self.child_pool = child_pool
        self.eager_gate = eager_gate
        self.no_buffer = no_buffer

    def __repr__(self):
        gated = sum(len(g) for g in self.eager_gate)
        return ("<FastSchemaInfo %s gates=%d no_buffer=%s>"
                % (self.fingerprint, gated, self.no_buffer))


def analyze_fastpath(schema: CompiledSchema,
                     query: Query) -> Optional[FastSchemaInfo]:
    """Analyze a fast-path-eligible (child-axis) query against ``schema``.

    Returns None when the schema proves nothing usable — including the
    statically-empty case, which the AST layer (``schema_opt``) already
    handles before lowering.
    """
    dtd = schema.dtd
    steps = query.steps
    bindings = schema_opt._step_bindings(dtd, steps)
    if bindings is None:
        return None
    n = len(steps)
    allowed = tuple(matchable for _bound, matchable in bindings)
    child_pool: List[Optional[FrozenSet[str]]] = [None]
    for m in range(1, n + 1):
        parents = bindings[m - 1][1]
        pool: FrozenSet[str] = frozenset()
        for parent in parents:
            pool |= schema.allowed_children(parent)
        child_pool.append(pool)
    gates: List[FrozenSet[int]] = [frozenset()]
    for m in range(1, n):
        gates.append(_gate_for_state(schema, steps, bindings, m))
    no_buffer = _no_buffer(steps, gates)
    if not no_buffer and not any(gates) \
            and not _prunes_anything(schema, steps, allowed, child_pool):
        return None
    return FastSchemaInfo(schema.fingerprint, allowed,
                          tuple(child_pool), tuple(gates), no_buffer)


def _prunes_anything(schema: CompiledSchema, steps, allowed,
                     child_pool) -> bool:
    """Would the pruning sets change any transition row?"""
    for m, step in enumerate(steps):
        if step.node_test == "*" \
                and len(allowed[m]) <= MAX_WILDCARD_TAGS:
            return True
    for m in range(1, len(steps) + 1):
        if child_pool[m] is None:
            continue
        for predicate in steps[m - 1].predicates:
            witness = _named_witness(predicate)
            if witness is not None and witness not in child_pool[m]:
                return True
    return False


def _gate_for_state(schema: CompiledSchema, steps, bindings,
                    m: int) -> FrozenSet[int]:
    """Eagerly-resolved predicate indices of step ``m-1`` at state ``m``.

    A predicate qualifies when, for every schema-possible parent tag
    and every allowed child tag the step-``m`` advance could fire on,
    the trigger either *is* the category-3 witness (the begin-watch has
    already resolved it True) or is dead for the witness (no later
    witness can exist, so still-pending means False).  Category-5
    predicates never accept their own witness tag as a trigger — the
    deciding text hasn't arrived at the witness's begin.
    """
    parent_step = steps[m - 1]
    parents = bindings[m - 1][1]
    step = steps[m]
    gate = set()
    for pred_index, predicate in enumerate(parent_step.predicates):
        if predicate.resolves_at_begin:
            continue
        witness = _named_witness(predicate)
        if witness is None:
            continue
        cat3 = type(predicate) is ChildExists
        cat5 = predicate.category == 5
        safe = True
        for parent in parents:
            children = schema.allowed_children(parent)
            if "*" in schema.dtd.child_graph().get(parent, frozenset()):
                safe = False
                break
            dead = schema.dead_tags(parent, witness)
            for trigger in children:
                if not step.matches_tag(trigger):
                    continue
                if cat3 and trigger == witness:
                    continue
                if trigger in dead and not (cat5 and trigger == witness):
                    continue
                safe = False
                break
            if not safe:
                break
        if safe:
            gate.add(pred_index)
    return frozenset(gate)


def _no_buffer(steps, gates: List[FrozenSet[int]]) -> bool:
    """Every non-begin predicate eagerly resolved before any descent?

    False when the query has no non-begin predicates at all: such plans
    already run begin-resolved without any schema, and claiming a
    schema win there would be noise.
    """
    if any(not p.resolves_at_begin for p in steps[-1].predicates):
        return False
    gated_any = False
    for k in range(len(steps) - 1):
        undecided = {index for index, p in enumerate(steps[k].predicates)
                     if not p.resolves_at_begin}
        if not undecided <= gates[k + 1]:
            return False
        if undecided:
            gated_any = True
    return gated_any
