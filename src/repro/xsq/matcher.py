"""Nondeterministic HPDT execution (Section 4.3).

This module runs the compiled HPDT over an event stream.  The paper
describes the runtime as a *current state set* in which each state
carries a depth vector; here the same information is held as a DAG of
:class:`StepMatch` objects — one per (element, location step, embedding)
— whose parent chains are exactly the depth vectors (one entry per
location-step entry event), plus one shared :class:`PredicateInstance`
per (element, step) activation, which is the paper's observation that a
BPDT's TRUE/NA state is a function of the element alone.

The correspondence to the paper's machinery, piece by piece:

=====================================  ====================================
Paper (Section 4.3)                    This module
=====================================  ====================================
current state with depth vector dv     a live :class:`StepMatch` chain
BPDT in NA / TRUE state                :attr:`PredicateInstance.status`
                                       ``None`` / ``True``
deciding event fires (Figs 6-9 arcs)   :meth:`PredicateInstance.witness`
                                       (inverted for ``not()`` indices)
NA→START at ``</tag>`` + queue.clear() :meth:`PredicateInstance
                                       .resolve_at_end` killing chains,
                                       dead items unlinked
NA→TRUE + queue.upload()/flush()       :meth:`PredicateInstance.resolve_true`
                                       re-owning or output-marking items
item enqueued under several dvs        one :class:`BufferItem` with one
                                       :class:`Chain` per embedding
"mark as output, send at queue head"   :class:`repro.xsq.buffers.OutputQueue`
category-6 path predicates (extension) one :class:`PathTracker` per
                                       activation
=====================================  ====================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.streaming.events import Event
from repro.streaming.serialize import EventSerializer
from repro.xpath.ast import (
    AggregateOutput,
    AttrOutput,
    Axis,
    ElementOutput,
    NotPredicate,
    OrPredicate,
    PathAttrCompare,
    PathAttrExists,
    PathExists,
    PathPredicate,
    PathTextCompare,
    Query,
    TextOutput,
    compare,
    test_tag,
)
from repro.xsq.aggregates import StatBuffer
from repro.xsq.bpdt import Bpdt
from repro.xsq.buffers import BufferItem, BufferTrace, OutputQueue
from repro.xsq.hpdt import Hpdt


class PredicateInstance:
    """TRUE/NA state of one BPDT activation for one stream element.

    ``status`` is ``None`` while the BPDT sits in its NA state, ``True``
    once a deciding event moves it to TRUE, and ``False`` after the
    element's end event falls back to START.  All embeddings that pass
    through the same element at the same step share one instance.
    """

    __slots__ = ("level", "pending", "status", "chain_watchers", "negated")

    def __init__(self, level: int, pending: Optional[set]):
        self.level = level
        self.pending = pending or set()
        self.status: Optional[bool] = None if self.pending else True
        self.chain_watchers: List["Chain"] = []
        #: Indices of pending predicates wrapped in not(): their witness
        #: events falsify the step, and the end event confirms them.
        self.negated: set = set()

    def resolve_pred(self, pred_index: int, runtime: "MatcherRuntime") -> None:
        """One of the step's predicates just evaluated to true."""
        if self.status is not None:
            return
        self.pending.discard(pred_index)
        if not self.pending:
            self.resolve_true(runtime)

    def witness(self, pred_index: int, runtime: "MatcherRuntime") -> None:
        """A deciding event for predicate ``pred_index`` just fired.

        For a plain predicate that settles it true; for a negated one
        it falsifies the whole activation (Figure 5's FAILED semantics,
        arriving late).
        """
        if self.status is not None:
            return
        if pred_index in self.negated:
            self.resolve_false(runtime)
        else:
            self.resolve_pred(pred_index, runtime)

    def resolve_at_end(self, runtime: "MatcherRuntime") -> None:
        """The element's end event: NA falls back to START — unless
        every still-pending predicate is a negation, in which case the
        absence of witnesses is exactly what not() asserts."""
        if self.status is not None:
            return
        if self.negated and self.pending <= self.negated:
            self.pending.clear()
            self.resolve_true(runtime)
        else:
            self.resolve_false(runtime)

    def resolve_true(self, runtime: "MatcherRuntime") -> None:
        self.status = True
        watchers, self.chain_watchers = self.chain_watchers, []
        for chain in watchers:
            chain.on_instance_true(runtime)

    def resolve_false(self, runtime: "MatcherRuntime") -> None:
        """End event reached with predicates still undecided (NA→START)."""
        self.status = False
        watchers, self.chain_watchers = self.chain_watchers, []
        for chain in watchers:
            chain.on_instance_false(runtime)

    def __repr__(self):
        return "<Instance L%d %s>" % (self.level, self.status)


#: Sentinel stored in a frame's instance table when a category-1
#: predicate already failed at the begin event (Figure 5's FAILED sink):
#: no embedding through this (element, step) can ever succeed.
FAILED_INSTANCE = "failed"


class PathTracker:
    """Per-activation matcher for one path predicate (category 6).

    Because path steps are all child-axis, the match state is a single
    integer: how many leading path steps the *currently open* element
    path below the anchor matches.  Begin events at relative depth
    ``match_len + 1`` may extend it, the matching end event retracts
    it, and reaching the full length triggers the predicate's terminal
    test (existence, attribute, or text).
    """

    __slots__ = ("instance", "pred_index", "predicate", "base_depth",
                 "match_len", "done")

    def __init__(self, instance: "PredicateInstance", pred_index: int,
                 predicate: PathPredicate, base_depth: int):
        self.instance = instance
        self.pred_index = pred_index
        self.predicate = predicate
        self.base_depth = base_depth
        self.match_len = 0
        self.done = False

    @property
    def length(self) -> int:
        return len(self.predicate.path)

    def on_begin(self, tag: str, attrs, depth: int,
                 runtime: "MatcherRuntime") -> None:
        if self.done or self.instance.status is not None:
            self.done = True
            return
        rel = depth - self.base_depth
        if rel != self.match_len + 1 or rel > self.length:
            return
        if not test_tag(self.predicate.path[rel - 1], tag):
            return
        self.match_len = rel
        if rel < self.length:
            return
        predicate = self.predicate
        if isinstance(predicate, PathExists):
            self._resolve(runtime)
        elif isinstance(predicate, PathAttrExists):
            if predicate.attr in attrs:
                self._resolve(runtime)
        elif isinstance(predicate, PathAttrCompare):
            value = attrs.get(predicate.attr)
            if value is not None and compare(value, predicate.op,
                                             predicate.value):
                self._resolve(runtime)
        # PathTextCompare waits for the terminal element's text events.

    def on_text(self, text: str, depth: int,
                runtime: "MatcherRuntime") -> None:
        if self.done or self.match_len != self.length:
            return
        predicate = self.predicate
        if not isinstance(predicate, PathTextCompare):
            return
        if depth == self.base_depth + self.length \
                and compare(text, predicate.op, predicate.value):
            self._resolve(runtime)

    def on_end(self, depth: int) -> None:
        if self.done:
            return
        rel = depth - self.base_depth
        if rel >= 1 and rel == self.match_len:
            self.match_len = rel - 1

    def _resolve(self, runtime: "MatcherRuntime") -> None:
        self.done = True
        self.instance.witness(self.pred_index, runtime)


class StepMatch:
    """One embedding of one element at one location step.

    The chain of ``parent`` links is the paper's depth vector for the
    corresponding current state; :meth:`depth_vector` materializes it.
    """

    __slots__ = ("step_index", "depth", "parent", "instance")

    def __init__(self, step_index: int, depth: int,
                 parent: Optional["StepMatch"],
                 instance: Optional[PredicateInstance]):
        self.step_index = step_index
        self.depth = depth
        self.parent = parent
        self.instance = instance

    def depth_vector(self) -> Tuple[int, ...]:
        depths: List[int] = []
        current: Optional[StepMatch] = self
        while current is not None and current.step_index >= 0:
            depths.append(current.depth)
            current = current.parent
        depths.reverse()
        return tuple(depths)

    def __repr__(self):
        return "<StepMatch step=%d dv=%r>" % (self.step_index,
                                              self.depth_vector())


class Chain:
    """One embedding's claim on a buffered item.

    ``instances`` holds the predicate instances of every level 1..n on
    the embedding's path; ``pending`` counts those still NA.  When the
    count hits zero the item is output-marked; when any instance goes
    false the chain dies, and when an item's last chain dies the item is
    cleared.
    """

    __slots__ = ("item", "pending", "instances", "dead", "dv")

    def __init__(self, item: BufferItem, pending: int,
                 instances: Tuple[PredicateInstance, ...],
                 dv: Tuple[int, ...]):
        self.item = item
        self.pending = pending
        self.instances = instances
        self.dead = False
        self.dv = dv

    def owner_id(self, hpdt: Hpdt) -> Optional[Tuple[int, int]]:
        """Current buffer position: the BPDT of the deepest NA level.

        ``None`` means no level is NA any more — the item belongs to the
        output, not to a buffer (the all-ones flush rule).
        """
        deepest_na = -1
        for instance in self.instances:
            if instance.status is None:
                deepest_na = instance.level
        if deepest_na < 0:
            return None
        statuses = [True]  # level 0: the root BPDT, always true
        for instance in self.instances:
            if instance.level < deepest_na:
                statuses.append(instance.status is True)
        return hpdt.id_for_statuses(tuple(statuses[:deepest_na]))

    def on_instance_true(self, runtime: "MatcherRuntime") -> None:
        if self.dead or self.item.state != "pending":
            return
        self.pending -= 1
        if self.pending == 0:
            runtime.queue.mark_output(self.item, depth_vector=self.dv)
            return
        if runtime.queue.track_ownership:
            # Ownership hops (Section 4.3's uploads) are observable
            # only through the trace or the accountant's per-BPDT
            # gauges; skip the arithmetic otherwise.
            owner = self.owner_id(runtime.hpdt)
            if owner is not None and owner != self.item.owner:
                runtime.queue.upload(self.item, owner,
                                     depth_vector=self.dv)

    def on_instance_false(self, runtime: "MatcherRuntime") -> None:
        if self.dead:
            return
        self.dead = True
        self.item.live_chains -= 1
        if self.item.live_chains <= 0:
            runtime.queue.mark_dead(self.item, depth_vector=self.dv)


class Frame:
    """Per-open-element runtime state."""

    __slots__ = ("tag", "depth", "contexts", "instances", "text_watch",
                 "child_begin_watch", "child_text_watch", "result_matches",
                 "element_item", "serializer", "trackers", "closure_down",
                 "dead_watch")

    def __init__(self, tag: str, depth: int):
        self.tag = tag
        self.depth = depth
        self.contexts: List[StepMatch] = []
        # Lazily-cached subset of ``contexts`` that survives into a
        # subtree the shared dispatch index skipped (closure contexts
        # only); see MatcherRuntime._closure_down.
        self.closure_down: Optional[List[StepMatch]] = None
        # step_index -> PredicateInstance | FAILED_INSTANCE
        self.instances: Dict[int, object] = {}
        # (instance, pred_index, predicate) triples still waiting.
        self.text_watch: List[tuple] = []
        self.child_begin_watch: List[tuple] = []
        self.child_text_watch: List[tuple] = []
        # Schema dead-tag watches: (instance, pred_index, dead_tags)
        # triples — a child whose tag is in ``dead_tags`` proves the
        # predicate's witness can no longer arrive (content-model
        # ordering), so the instance falsifies early.  None (not an
        # empty list) when no schema is attached: the per-begin check
        # is one attribute load.
        self.dead_watch: Optional[List[tuple]] = None
        self.result_matches: List[StepMatch] = []
        self.element_item: Optional[BufferItem] = None
        self.serializer: Optional[EventSerializer] = None
        self.trackers: List[PathTracker] = []


class MatcherRuntime:
    """Drives the HPDT over an event stream, filling ``sink``.

    One instance handles one document; engines construct a fresh runtime
    per run (the compiled :class:`Hpdt` is reusable across runs).
    """

    def __init__(self, hpdt: Hpdt, sink: List[str],
                 trace: Optional[BufferTrace] = None,
                 stat: Optional[StatBuffer] = None,
                 queue: Optional[OutputQueue] = None,
                 account=None, schema_dead=None):
        self.hpdt = hpdt
        # (step_index, tag) -> ((pred_index, dead_tags), ...) from
        # repro.xsq.schema_compile.analyze_runtime; None without schema.
        self._schema_dead = schema_dead
        self.query: Query = hpdt.query
        self.steps = hpdt.query.steps
        self.last_step = len(self.steps) - 1
        self.output = hpdt.query.output
        self.sink = sink
        self.stat = stat
        self.queue = queue if queue is not None \
            else OutputQueue(sink, trace=trace, account=account)
        self.account = self.queue.account
        root_sm = StepMatch(-1, 0, None, None)
        root_frame = Frame("", 0)
        root_frame.contexts = [root_sm]
        self.stack: List[Frame] = [root_frame]
        self._serializing: List[Frame] = []
        self._trackers: List[PathTracker] = []
        # Peak simultaneously-open instances: the runtime memory metric.
        self._live_instances = 0
        self.peak_instances = 0
        # Execution profiler (repro.obs.profile); set by the profiled
        # pump, read inside the watch-scan branches only — un-profiled
        # runs pay one None-test per *watched* event, never per event.
        self.prof = None
        if self.account is None:
            # The accountant tail in _on_end is the runtime's only
            # per-event obs branch; pay the None-check once per run by
            # binding the plain handler (feed() and the shared-dispatch
            # driver both go through self.on_end).
            self.on_end = self._on_end_plain

    # -- public driving --------------------------------------------------

    def run(self, events: Iterable[Event]) -> List[str]:
        feed = self.feed
        for event in events:
            feed(event)
        self.finish()
        return self.sink

    def feed(self, event: Event) -> None:
        kind = event.kind
        if kind == "begin":
            self.on_begin(event)
        elif kind == "end":
            self.on_end(event)
        else:
            self.on_text(event)

    def finish(self) -> None:
        self.queue.finish()

    def profile_state(self) -> int:
        """Automaton progress for profiler attribution: the deepest
        match frontier (count of matched location steps) at the top of
        the stack — the nondeterministic analogue of an HPDT state id."""
        top = self.stack[-1]
        return max((sm.step_index for sm in top.contexts), default=-1) + 1

    def _closure_down(self, frame: Frame) -> List[StepMatch]:
        """Contexts that survive a subtree the dispatch index skipped.

        When the shared dispatch (:mod:`repro.xsq.dispatch`) withholds
        the events of elements this query cannot react to, the frames
        it would have pushed for them all carry the same context list:
        the parent's contexts filtered to those whose next step is a
        closure (``//`` self-loop propagation).  The filter is
        idempotent — every survivor's next step is a closure step, so
        it survives again at any deeper skipped level — which is why a
        gap of any depth collapses to this one cached list.
        """
        down = frame.closure_down
        if down is None:
            steps = self.steps
            down = [sm for sm in frame.contexts
                    if steps[sm.step_index + 1].axis is Axis.DESCENDANT]
            frame.closure_down = down
        return down

    # -- event handlers ----------------------------------------------------

    def _on_begin(self, event: Event) -> None:
        parent = self.stack[-1]
        tag = event.tag
        attrs = event.attrs
        frame = Frame(tag, event.depth)
        # Under shared dispatch (repro.xsq.dispatch) events this runtime
        # cannot react to are never delivered, so the stack is sparse:
        # ``parent`` may be a strict ancestor rather than the document
        # parent.  ``adjacent`` gates the direct-child semantics below;
        # in dense (single-query) runs it is always True.
        adjacent = parent.depth == event.depth - 1

        # (a) This begin event may decide category-3/4 predicates of the
        # parent element (Figures 7/8: NA -> TRUE on a passing <child>)
        # or advance a path tracker (category 6).
        if adjacent and parent.child_begin_watch:
            prof = self.prof
            t0 = prof.clock() if prof is not None else 0.0
            for entry in parent.child_begin_watch:
                instance, pred_index, predicate = entry
                if instance.status is not None or pred_index not in instance.pending:
                    continue
                if Bpdt.child_begin_verdict(predicate, tag, attrs):
                    instance.witness(pred_index, self)
            if prof is not None:
                prof.add_phase("predicate", prof.clock() - t0,
                               len(parent.child_begin_watch))
        # (a') Schema eager falsification: a child tag after which the
        # content model can never produce the witness again settles the
        # predicate FALSE now — buffered items under this activation
        # die here instead of at the parent's end event.  Runs after
        # the witness scan above so a tag that is both witness and
        # dead-marker (category 3/4) resolves TRUE first.
        if adjacent and parent.dead_watch is not None:
            for instance, pred_index, dead in parent.dead_watch:
                if instance.status is None and tag in dead \
                        and pred_index in instance.pending:
                    instance.resolve_false(self)
        if self._trackers:
            for tracker in self._trackers:
                tracker.on_begin(tag, attrs, event.depth, self)

        # (b) Advance the match frontier: try each context against the
        # next location step, propagating closure contexts downwards
        # (the // self-transition on START states).
        contexts = frame.contexts
        steps = self.steps
        for sm in (parent.contexts if adjacent
                   else self._closure_down(parent)):
            next_index = sm.step_index + 1
            step = steps[next_index]
            if step.axis is Axis.DESCENDANT:
                contexts.append(sm)
            if not step.matches_tag(tag):
                continue
            instance = frame.instances.get(next_index)
            if instance is None:
                instance = self._new_instance(frame, next_index, attrs)
            if instance is FAILED_INSTANCE:
                continue
            match = StepMatch(next_index, event.depth, sm, instance)
            if next_index < self.last_step:
                contexts.append(match)
            else:
                frame.result_matches.append(match)

        self.stack.append(frame)

        # (c) Output hooks for result candidates.
        if frame.result_matches:
            self._on_result_begin(frame, event)
        if self._serializing:
            for holder in self._serializing:
                holder.serializer.feed(event)

    def _on_text(self, event: Event) -> None:
        frame = self.stack[-1]

        # Category-2 predicates of this element (Figure 6).
        if frame.text_watch:
            prof = self.prof
            t0 = prof.clock() if prof is not None else 0.0
            for entry in frame.text_watch:
                instance, pred_index, predicate = entry
                if instance.status is not None or pred_index not in instance.pending:
                    continue
                if Bpdt.text_verdict(predicate, event.text):
                    instance.witness(pred_index, self)
            if prof is not None:
                prof.add_phase("predicate", prof.clock() - t0,
                               len(frame.text_watch))

        # Path trackers watching a terminal element's text (category 6).
        if self._trackers:
            for tracker in self._trackers:
                tracker.on_text(event.text, event.depth, self)

        # Category-5 predicates of the parent element (Figure 9).  The
        # depth check keeps sparse stacks (shared dispatch) honest: the
        # watch only covers text in *direct* children of its element.
        if len(self.stack) >= 2:
            parent = self.stack[-2]
            if parent.child_text_watch \
                    and parent.depth == event.depth - 1:
                prof = self.prof
                t0 = prof.clock() if prof is not None else 0.0
                for entry in parent.child_text_watch:
                    instance, pred_index, predicate = entry
                    if (instance.status is not None
                            or pred_index not in instance.pending):
                        continue
                    if Bpdt.child_text_verdict(predicate, frame.tag,
                                               event.text):
                        instance.witness(pred_index, self)
                if prof is not None:
                    prof.add_phase("predicate", prof.clock() - t0,
                                   len(parent.child_text_watch))

        # Result values carried by text events.
        if frame.result_matches:
            output = self.output
            if isinstance(output, TextOutput):
                self._make_item(event.text, frame.result_matches)
            elif isinstance(output, AggregateOutput) and output.name != "count":
                try:
                    value = float(event.text.strip())
                except ValueError:
                    value = None
                if value is not None:
                    self._make_item(
                        event.text, frame.result_matches,
                        on_emit=self._agg_emitter(value))

        if self._serializing:
            for holder in self._serializing:
                holder.serializer.feed(event)

    def _on_end(self, event: Event) -> None:
        if self._serializing:
            for holder in self._serializing:
                holder.serializer.feed(event)
        frame = self.stack.pop()
        if frame.element_item is not None:
            frame.element_item.value = frame.serializer.getvalue()
            self._serializing.remove(frame)
            self.queue.value_finalized(frame.element_item)
        if self._trackers:
            if frame.trackers:
                # The anchor element closed: its trackers are finished.
                for tracker in frame.trackers:
                    tracker.done = True
                self._trackers = [t for t in self._trackers if not t.done]
            for tracker in self._trackers:
                tracker.on_end(event.depth)
        # NA -> START: every still-undecided activation is now false
        # (all children seen, none satisfied the predicate).
        for instance in frame.instances.values():
            if instance is not FAILED_INSTANCE:
                self._live_instances -= 1
                if instance.status is None:
                    instance.resolve_at_end(self)
        if self.account is not None and frame.instances:
            self.account.set_instances(self._live_instances)

    def _on_end_plain(self, event: Event) -> None:
        """:meth:`_on_end` minus the accountant tail.

        Bound as ``self.on_end`` when no account is attached (see
        ``__init__``).  Keep in lockstep with :meth:`_on_end` — only
        the final accountant block may differ.
        """
        if self._serializing:
            for holder in self._serializing:
                holder.serializer.feed(event)
        frame = self.stack.pop()
        if frame.element_item is not None:
            frame.element_item.value = frame.serializer.getvalue()
            self._serializing.remove(frame)
            self.queue.value_finalized(frame.element_item)
        if self._trackers:
            if frame.trackers:
                # The anchor element closed: its trackers are finished.
                for tracker in frame.trackers:
                    tracker.done = True
                self._trackers = [t for t in self._trackers if not t.done]
            for tracker in self._trackers:
                tracker.on_end(event.depth)
        # NA -> START: every still-undecided activation is now false
        # (all children seen, none satisfied the predicate).
        for instance in frame.instances.values():
            if instance is not FAILED_INSTANCE:
                self._live_instances -= 1
                if instance.status is None:
                    instance.resolve_at_end(self)

    # The shared-dispatch driver (repro.xsq.multiquery) routes each
    # event kind directly, having already branched on it once.
    on_begin = _on_begin
    on_text = _on_text
    on_end = _on_end

    # -- helpers ----------------------------------------------------------

    def _new_instance(self, frame: Frame, step_index: int,
                      attrs: Dict[str, str]):
        """Activate the BPDT of ``step_index`` for this element.

        Evaluates category-1 predicates immediately (Figure 5) and
        registers deciding-event watchers for the rest (Figures 6–9).
        """
        step = self.steps[step_index]
        bpdt = self.hpdt.bpdts[(step_index + 1,
                                (1 << (step_index + 1)) - 1)]
        verdict = bpdt.begin_verdict(attrs)
        if verdict is False:
            frame.instances[step_index] = FAILED_INSTANCE
            return FAILED_INSTANCE
        if verdict is True:
            instance = PredicateInstance(step_index + 1, None)
        else:
            undecided = [(i, p) for i, p in enumerate(step.predicates)
                         if not p.resolves_at_begin]
            instance = PredicateInstance(step_index + 1,
                                         {i for i, _ in undecided})
            for pred_index, predicate in undecided:
                self._register_watcher(frame, instance, pred_index,
                                       predicate)
            if self._schema_dead is not None:
                hooks = self._schema_dead.get((step_index, frame.tag))
                if hooks:
                    pending = instance.pending
                    for pred_index, dead in hooks:
                        if pred_index in pending:
                            if frame.dead_watch is None:
                                frame.dead_watch = []
                            frame.dead_watch.append(
                                (instance, pred_index, dead))
        frame.instances[step_index] = instance
        self._live_instances += 1
        if self._live_instances > self.peak_instances:
            self.peak_instances = self._live_instances
        if self.account is not None:
            self.account.set_instances(self._live_instances)
        return instance

    def _register_watcher(self, frame: Frame, instance: PredicateInstance,
                          pred_index: int, predicate) -> None:
        """Route one undecided predicate to its deciding-event hook.

        An ``or`` disjunction registers every non-attribute branch
        against the same (instance, pred_index) slot: the first branch
        witnessed true settles the whole predicate.
        """
        if isinstance(predicate, NotPredicate):
            instance.negated.add(pred_index)
            self._register_watcher(frame, instance, pred_index,
                                   predicate.inner)
            return
        if isinstance(predicate, OrPredicate):
            for branch in predicate.branches:
                if not branch.resolves_at_begin:
                    self._register_watcher(frame, instance, pred_index,
                                           branch)
            return
        if isinstance(predicate, PathPredicate):
            tracker = PathTracker(instance, pred_index, predicate,
                                  frame.depth)
            frame.trackers.append(tracker)
            self._trackers.append(tracker)
            return
        entry = (instance, pred_index, predicate)
        if predicate.category == 2:
            frame.text_watch.append(entry)
        elif predicate.category in (3, 4):
            frame.child_begin_watch.append(entry)
        else:
            frame.child_text_watch.append(entry)

    def _on_result_begin(self, frame: Frame, event: Event) -> None:
        output = self.output
        if isinstance(output, AttrOutput):
            value = event.attrs.get(output.attr)
            if value is not None:
                self._make_item(value, frame.result_matches)
        elif isinstance(output, ElementOutput):
            item = self._make_item(None, frame.result_matches,
                                   value_ready=False)
            if item is not None:
                frame.element_item = item
                frame.serializer = EventSerializer()
                self._serializing.append(frame)
        elif isinstance(output, AggregateOutput) and output.name == "count":
            self._make_item("1", frame.result_matches,
                            on_emit=self._agg_emitter(1.0))

    def _agg_emitter(self, value: float) -> Callable[[BufferItem], None]:
        stat = self.stat

        def emit(_item: BufferItem) -> None:
            stat.update(value)

        return emit

    def _make_item(self, value: Optional[str],
                   result_matches: List[StepMatch],
                   value_ready: bool = True,
                   on_emit: Optional[Callable] = None) -> Optional[BufferItem]:
        """Buffer one output unit with one chain per live embedding.

        Depth vectors and buffer-ownership hops exist for the trace
        facility (the paper's worked examples) and the resource
        accountant; when neither is attached they are skipped — the
        chain bookkeeping alone decides emission.
        """
        tracking = self.queue.track_ownership
        chain_specs = []
        for sm in result_matches:
            instances: List[PredicateInstance] = []
            dead = False
            current: Optional[StepMatch] = sm
            while current is not None and current.step_index >= 0:
                instance = current.instance
                if instance.status is False:
                    dead = True
                    break
                instances.append(instance)
                current = current.parent
            if dead:
                continue
            instances.reverse()
            chain_specs.append(
                (tuple(instances),
                 sm.depth_vector() if tracking else ()))
        if not chain_specs:
            return None
        first_instances, first_dv = chain_specs[0]
        owner = (self._creation_owner(first_instances) if tracking
                 else (len(first_instances), 0))
        governed = 0
        if self.account is not None:
            # Unresolved predicates governing the item: the *minimum*
            # over embeddings (any one chain resolving outputs the
            # item), consumed by the auditor's necessary-buffering
            # check.
            governed = min(
                sum(1 for inst in instances if inst.status is None)
                for instances, _dv in chain_specs)
        item = self.queue.new_item(value, owner, value_ready=value_ready,
                                   on_emit=on_emit, depth_vector=first_dv,
                                   governed=governed)
        item.live_chains = len(chain_specs)
        for instances, dv in chain_specs:
            pending = [inst for inst in instances if inst.status is None]
            chain = Chain(item, len(pending), instances, dv)
            if not pending:
                self.queue.mark_output(item, depth_vector=dv)
                break
            for instance in pending:
                instance.chain_watchers.append(chain)
        else:
            # No chain satisfied yet; record the first upload hop (the
            # item logically moves from the lowest layer to the deepest
            # still-NA ancestor's buffer, Section 4.3's upload rule).
            if tracking:
                target = Chain(item, 0, first_instances,
                               first_dv).owner_id(self.hpdt)
                if target is not None and target != item.owner:
                    self.queue.upload(item, target, depth_vector=first_dv)
        return item

    def _creation_owner(self, instances: Tuple[PredicateInstance, ...]
                        ) -> Tuple[int, int]:
        """Lowest-layer BPDT position given current predicate knowledge."""
        statuses = [True]  # root level
        for instance in instances[:-1]:
            statuses.append(instance.status is True)
        return self.hpdt.id_for_statuses(tuple(statuses))
