"""One experiment per table/figure of the paper's evaluation section.

Every function returns an :class:`ExperimentResult` whose ``rows`` are
plain dictionaries (easy to assert on in tests and to serialize into
EXPERIMENTS.md) and whose ``report()`` renders the terminal version of
the paper's chart.  The shapes the paper reports — who is fastest,
whose memory is flat vs linear, which query ordering is cheapest — are
asserted by ``tests/test_experiment_shapes.py`` on scaled-down inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bench.datasets import DatasetCache
from repro.bench.metrics import (
    measure_memory,
    measure_throughput,
    pureparser_seconds,
)
from repro.bench.report import bar_chart, format_table
from repro.bench.systems import ADAPTERS, adapters_for, feature_matrix
from repro.datagen import dataset_statistics
from repro.xsq.engine import XSQEngine

#: Figure 16 queries (SHAKE); Q1's keyword test spelled with contains.
SHAKE_QUERIES = {
    "Q1": "/PLAY/ACT/SCENE/SPEECH[LINE contains 'love']/SPEAKER/text()",
    "Q2": "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
    "Q3": "//ACT//SPEAKER/text()",
}

#: Figure 17 queries, one per dataset, from the paper's table.
DATASET_QUERIES = {
    "shake": "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
    "nasa": "/datasets/dataset/reference/source/other/name/text()",
    "dblp": "/dblp/article/title/text()",
    "psd": ("/ProteinDatabase/ProteinEntry/reference"
            "/refinfo/authors/author/text()"),
}

FIG19_QUERY = "/dblp/inproceedings[author]/title/text()"
FIG19_QUERY_XMLTK = "/dblp/inproceedings/title/text()"  # paper's footnote 1
FIG20_QUERY = "//pub[year]//book[@id]/title/text()"
# The paper's /a[...] queries are relative to its implicit root; our
# ordered dataset wraps the <a> records in a <root> element, so the
# equivalent queries carry the explicit /root step.
FIG21_QUERIES = ("/root/a[prior=0]", "/root/a[posterior=0]",
                 "/root/a[@id=0]")
FIG22_QUERIES = {"Red": "/a/Red/text()", "Green": "/a/Green/text()",
                 "Blue": "/a/Blue/text()"}


class ExperimentResult:
    """Structured outcome of one experiment."""

    def __init__(self, exp_id: str, title: str, rows: List[dict],
                 notes: str = "", chart: str = ""):
        self.exp_id = exp_id
        self.title = title
        self.rows = rows
        self.notes = notes
        self.chart = chart

    def report(self) -> str:
        if not self.rows:
            return "%s: %s\n(no rows)" % (self.exp_id, self.title)
        headers = list(self.rows[0].keys())
        body = format_table(headers,
                            [[row.get(h, "") for h in headers]
                             for row in self.rows],
                            title="%s — %s" % (self.exp_id, self.title))
        parts = [body]
        if self.chart:
            parts.append("")
            parts.append(self.chart)
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def __repr__(self):
        return "<ExperimentResult %s: %d rows>" % (self.exp_id,
                                                   len(self.rows))


# ---------------------------------------------------------------------------
# Figure 14: system features
# ---------------------------------------------------------------------------

def fig14_features(cache: Optional[DatasetCache] = None,
                   repeat: int = 1) -> ExperimentResult:
    """The capability matrix, regenerated from the adapters' flags."""
    rows = feature_matrix()
    return ExperimentResult(
        "fig14", "System features",
        rows,
        notes=("Flags come from the adapter classes; "
               "tests assert them against live probe queries."))


# ---------------------------------------------------------------------------
# Figure 15: dataset descriptions
# ---------------------------------------------------------------------------

def fig15_datasets(cache: Optional[DatasetCache] = None,
                   repeat: int = 1) -> ExperimentResult:
    """Size / text size / element count / depth / tag length per corpus."""
    cache = cache or DatasetCache()
    rows = []
    for name in ("shake", "nasa", "dblp", "psd"):
        path = cache.path(name)
        stats = dataset_statistics(path)
        rows.append({
            "dataset": name.upper(),
            "size_mb": stats.size_bytes / 1e6,
            "text_mb": stats.text_bytes / 1e6,
            "elements_k": stats.element_count / 1e3,
            "avg_depth": stats.avg_depth,
            "max_depth": stats.max_depth,
            "avg_tag_len": stats.avg_tag_length,
        })
    return ExperimentResult(
        "fig15", "Dataset descriptions (generated stand-ins)", rows,
        notes=("Paper values (real corpora): SHAKE 7.89MB 5.77/7 5.03; "
               "NASA 25MB 5.58/8 6.31; DBLP 119MB 2.90/6 5.81; "
               "PSD 716MB 5.57/7 6.33.  Sizes here are scaled down; "
               "shape columns should track the paper."))


# ---------------------------------------------------------------------------
# Figures 16/17: relative throughput
# ---------------------------------------------------------------------------

def _relative_rows(query_label: str, query: str, path: str,
                   baseline_seconds: float, repeat: int,
                   xmltk_fallback: Optional[str] = None) -> List[dict]:
    rows = []
    for adapter in ADAPTERS.values():
        effective_query = query
        note = ""
        if not adapter.can_run(query):
            if adapter.name == "XMLTK" and xmltk_fallback is not None \
                    and adapter.can_run(xmltk_fallback):
                effective_query = xmltk_fallback
                note = "predicate dropped (paper footnote)"
            else:
                rows.append({"query": query_label, "system": adapter.name,
                             "relative_throughput": 0.0, "seconds": 0.0,
                             "results": 0, "note": "cannot run"})
                continue
        run = measure_throughput(adapter, effective_query, path,
                                 repeat=repeat)
        rows.append({
            "query": query_label,
            "system": adapter.name,
            "relative_throughput": min(1.0, baseline_seconds / run.seconds),
            "seconds": run.seconds,
            "results": run.result_count,
            "note": note,
        })
    return rows


def fig16_shake_queries(cache: Optional[DatasetCache] = None,
                        repeat: int = 1) -> ExperimentResult:
    """Relative throughput of every system for Q1–Q3 on SHAKE."""
    cache = cache or DatasetCache()
    path = cache.path("shake")
    baseline = pureparser_seconds(path, repeat=repeat)
    rows: List[dict] = []
    for label, query in SHAKE_QUERIES.items():
        rows.extend(_relative_rows(label, query, path, baseline, repeat))
    chart = bar_chart(
        ["%s %s" % (r["query"], r["system"]) for r in rows],
        [r["relative_throughput"] for r in rows],
        title="Relative throughput (1.0 = PureParser)", maximum=1.0)
    return ExperimentResult(
        "fig16", "Relative throughput per query on SHAKE", rows, chart=chart,
        notes=("Paper shape: XMLTK and XSQ-NC fastest streaming systems "
               "on the queries they handle; XSQ-F slower (nondeterminism); "
               "only XSQ-F among the streaming systems answers Q3's "
               "closures with predicates elsewhere."))


def fig17_datasets(cache: Optional[DatasetCache] = None,
                   repeat: int = 1) -> ExperimentResult:
    """Relative throughput of every system across the four corpora."""
    cache = cache or DatasetCache()
    rows: List[dict] = []
    for name, query in DATASET_QUERIES.items():
        path = cache.path(name)
        baseline = pureparser_seconds(path, repeat=repeat)
        rows.extend(_relative_rows(name.upper(), query, path, baseline,
                                   repeat))
    chart = bar_chart(
        ["%s %s" % (r["query"], r["system"]) for r in rows],
        [r["relative_throughput"] for r in rows],
        title="Relative throughput (1.0 = PureParser)", maximum=1.0)
    return ExperimentResult(
        "fig17", "Relative throughput per dataset", rows, chart=chart,
        notes="Same systems ranking as fig16, across dataset shapes.")


# ---------------------------------------------------------------------------
# Figure 18: phase breakdown
# ---------------------------------------------------------------------------

def fig18_phases(cache: Optional[DatasetCache] = None,
                 repeat: int = 1) -> ExperimentResult:
    """Compile / preprocess / query wall time on the SHAKE query."""
    cache = cache or DatasetCache()
    path = cache.path("shake")
    query = DATASET_QUERIES["shake"]
    rows = []
    for adapter in ADAPTERS.values():
        if not adapter.can_run(query):
            continue
        run = measure_throughput(adapter, query, path, repeat=repeat)
        rows.append({
            "system": adapter.name,
            "compile_s": run.compile_seconds,
            "preprocess_s": run.preprocess_seconds,
            "query_s": run.query_seconds,
            "total_s": run.seconds,
            "streaming": adapter.streaming,
        })
    return ExperimentResult(
        "fig18", "Phase breakdown on SHAKE", rows,
        notes=("Paper shape: streaming systems have ~zero preprocessing "
               "and return results immediately; Saxon/XQEngine pay a "
               "preprocessing phase proportional to the data before the "
               "first result."))


# ---------------------------------------------------------------------------
# Figures 19/20: memory scaling
# ---------------------------------------------------------------------------

def _memory_rows(dataset: str, query: str, sizes: List[int],
                 cache: DatasetCache, systems: List[str],
                 xmltk_fallback: Optional[str] = None,
                 generator_kwargs: Optional[dict] = None) -> List[dict]:
    rows = []
    for size in sizes:
        path = cache.path(dataset, size_bytes=size,
                          **(generator_kwargs or {}))
        for name in systems:
            adapter = ADAPTERS[name]
            effective = query
            note = ""
            if not adapter.can_run(query):
                if name == "XMLTK" and xmltk_fallback is not None \
                        and adapter.can_run(xmltk_fallback):
                    effective = xmltk_fallback
                    note = "predicate dropped"
                else:
                    rows.append({"size_mb": size / 1e6, "system": name,
                                 "peak_mb": 0.0, "ratio": 0.0,
                                 "buffered_items": "",
                                 "note": "cannot run"})
                    continue
            memory = measure_memory(adapter, effective, path)
            rows.append({
                "size_mb": memory.input_bytes / 1e6,
                "system": name,
                "peak_mb": memory.peak_alloc_bytes / 1e6,
                "ratio": memory.alloc_ratio,
                "buffered_items": memory.peak_buffered_items
                if memory.peak_buffered_items is not None else "",
                "note": note,
            })
    return rows


def fig19_memory_dblp(cache: Optional[DatasetCache] = None,
                      repeat: int = 1) -> ExperimentResult:
    """Memory vs input size on DBLP excerpts (paper: 5–50 MB)."""
    cache = cache or DatasetCache()
    base = 2_000_000  # cache.path applies the cache's scale factor
    sizes = [base, base * 2, base * 3, base * 4]
    rows = _memory_rows(
        "dblp", FIG19_QUERY, sizes, cache,
        ["XSQ-F", "XSQ-NC", "XMLTK", "Saxon", "XQEngine", "Joost"],
        xmltk_fallback=FIG19_QUERY_XMLTK)
    return ExperimentResult(
        "fig19", "Memory vs DBLP input size", rows,
        notes=("Paper shape: Saxon/Galax (DOM) memory grows linearly with "
               "a 4-5x constant; streaming systems stay flat regardless "
               "of input size."))


def fig20_memory_recursive(cache: Optional[DatasetCache] = None,
                           repeat: int = 1) -> ExperimentResult:
    """Memory vs size on recursive data with a closure+predicate query."""
    cache = cache or DatasetCache()
    base = 1_000_000  # cache.path applies the cache's scale factor
    sizes = [base, base * 2, base * 4]
    rows = _memory_rows(
        "recursive", FIG20_QUERY, sizes, cache,
        ["XSQ-F", "XSQ-NC", "XMLTK", "Saxon", "XQEngine", "Joost"])
    return ExperimentResult(
        "fig20", "Memory vs recursive input size", rows,
        notes=("Paper shape: XSQ-NC and XMLTK cannot handle the query "
               "(closure + predicates); XSQ-F stays flat even on highly "
               "recursive data; DOM systems grow linearly."))


# ---------------------------------------------------------------------------
# Figure 21: data ordering
# ---------------------------------------------------------------------------

def fig21_ordering(cache: Optional[DatasetCache] = None,
                   repeat: int = 1) -> ExperimentResult:
    """Throughput sensitivity to *where* the deciding data sits."""
    cache = cache or DatasetCache()
    path = cache.path("ordered", filler_repeats=2000)
    baseline = pureparser_seconds(path, repeat=repeat)
    rows = []
    for query in FIG21_QUERIES:
        for name in ("XSQ-NC", "XSQ-F", "Saxon"):
            run = measure_throughput(ADAPTERS[name], query, path,
                                     repeat=repeat)
            rows.append({
                "query": query,
                "system": name,
                "relative_throughput": min(1.0, baseline / run.seconds),
                "seconds": run.seconds,
                "results": run.result_count,
            })
    return ExperimentResult(
        "fig21", "Effect of data ordering on throughput", rows,
        notes=("Paper shape: all queries return empty results; XSQ-NC is "
               "markedly faster on /a[@id=0] (decided at the begin event, "
               "nothing buffered) than on /a[prior=0] and /a[posterior=0] "
               "(buffer until </a>); Saxon is insensitive; XSQ-F less "
               "sensitive than XSQ-NC."))


# ---------------------------------------------------------------------------
# Figure 22: result size
# ---------------------------------------------------------------------------

def fig22_result_size(cache: Optional[DatasetCache] = None,
                      repeat: int = 1) -> ExperimentResult:
    """Throughput sensitivity to the fraction of data in the result."""
    cache = cache or DatasetCache()
    path = cache.path("colors")
    baseline = pureparser_seconds(path, repeat=repeat)
    rows = []
    for color, query in FIG22_QUERIES.items():
        for name in ("XSQ-NC", "XSQ-F", "XMLTK", "Saxon", "Joost"):
            run = measure_throughput(ADAPTERS[name], query, path,
                                     repeat=repeat)
            rows.append({
                "query": "/a/%s (%s)" % (color,
                                         {"Red": "10%", "Green": "30%",
                                          "Blue": "60%"}[color]),
                "system": name,
                "relative_throughput": min(1.0, baseline / run.seconds),
                "seconds": run.seconds,
                "results": run.result_count,
            })
    return ExperimentResult(
        "fig22", "Effect of result size on throughput", rows,
        notes=("Paper shape: XSQ-NC degrades most as the result grows "
               "(more transitions + output work per item); XSQ-F is less "
               "sensitive; Saxon least sensitive."))


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ---------------------------------------------------------------------------

def ablation_determinism(cache: Optional[DatasetCache] = None,
                         repeat: int = 1) -> ExperimentResult:
    """XSQ-NC vs XSQ-F on identical closure-free queries (Section 6.2)."""
    cache = cache or DatasetCache()
    rows = []
    for name in ("shake", "dblp"):
        path = cache.path(name)
        query = DATASET_QUERIES[name]
        nc = measure_throughput(ADAPTERS["XSQ-NC"], query, path,
                                repeat=repeat)
        full = measure_throughput(ADAPTERS["XSQ-F"], query, path,
                                  repeat=repeat)
        rows.append({
            "dataset": name.upper(),
            "query": query,
            "xsq_nc_s": nc.seconds,
            "xsq_f_s": full.seconds,
            "f_over_nc": full.seconds / nc.seconds,
            "results_equal": nc.result_count == full.result_count,
        })
    return ExperimentResult(
        "ablation-determinism",
        "Cost of nondeterminism: XSQ-F vs XSQ-NC on the same queries",
        rows,
        notes=("Paper: 'Even when processing the same query without "
               "closure, XSQ-NC is faster than XSQ-F since XSQ-F uses a "
               "non-deterministic PDT.'  f_over_nc > 1 reproduces that."))


def ablation_buffering(cache: Optional[DatasetCache] = None,
                       repeat: int = 1) -> ExperimentResult:
    """How much the buffer actually holds, by query/data combination."""
    cache = cache or DatasetCache()
    probes = [
        ("early decision", "ordered", "/root/a[@id=0]",
         {"filler_repeats": 2000}),
        ("late decision", "ordered", "/root/a[posterior=0]",
         {"filler_repeats": 2000}),
        ("closures, recursive", "recursive", FIG20_QUERY, {}),
    ]
    rows = []
    for label, dataset, query, kwargs in probes:
        path = cache.path(dataset, **kwargs)
        engine = XSQEngine(query)
        results = engine.run(path)
        stats = engine.last_stats
        rows.append({
            "probe": label,
            "query": query,
            "enqueued": stats.enqueued,
            "cleared": stats.cleared,
            "emitted": stats.emitted,
            "peak_buffered": stats.peak_buffered_items,
            "peak_instances": stats.peak_instances,
            "results": len(results),
        })
    return ExperimentResult(
        "ablation-buffering",
        "Buffer discipline: what XSQ-F actually retains",
        rows,
        notes=("peak_buffered stays bounded by the number of simultaneously "
               "undetermined candidates — the paper's memory claim — and "
               "the early-decision probe buffers nothing."))


#: Registry used by the CLI and the pytest benchmark wrappers.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig14": fig14_features,
    "fig15": fig15_datasets,
    "fig16": fig16_shake_queries,
    "fig17": fig17_datasets,
    "fig18": fig18_phases,
    "fig19": fig19_memory_dblp,
    "fig20": fig20_memory_recursive,
    "fig21": fig21_ordering,
    "fig22": fig22_result_size,
    "ablation-determinism": ablation_determinism,
    "ablation-buffering": ablation_buffering,
}
