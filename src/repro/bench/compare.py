"""Compare two experiment JSON exports for performance regressions.

A maintained reproduction needs to notice when a change breaks a
*shape* the paper established — XSQ-NC slipping behind XSQ-F, memory
going linear — not just absolute slowdowns.  Workflow::

    python -m repro.bench all --json baseline.json
    # ... hack on the engines ...
    python -m repro.bench all --json current.json
    python -m repro.bench.compare baseline.json current.json

The comparator matches rows across the two exports by their identity
columns (every column that is not a measurement), reports relative
changes in the measurement columns, and exits non-zero when any change
exceeds the threshold — suitable for CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Row keys treated as measurements (compared); all others are identity.
MEASUREMENT_KEYS = frozenset((
    "relative_throughput", "seconds", "compile_s", "preprocess_s",
    "query_s", "total_s", "peak_mb", "ratio", "xsq_nc_s", "xsq_f_s",
    "f_over_nc", "enqueued", "cleared", "emitted", "peak_buffered",
    "peak_instances",
))

#: Identity-only keys that may legitimately differ run to run.
IGNORED_KEYS = frozenset(("note",))


class Delta:
    """One measurement change between baseline and current."""

    __slots__ = ("experiment", "row_key", "metric", "baseline", "current")

    def __init__(self, experiment: str, row_key: Tuple, metric: str,
                 baseline: float, current: float):
        self.experiment = experiment
        self.row_key = row_key
        self.metric = metric
        self.baseline = baseline
        self.current = current

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        identity = ", ".join("%s=%s" % kv for kv in self.row_key)
        return "%s [%s] %s: %.4g -> %.4g (x%.2f)" % (
            self.experiment, identity, self.metric,
            self.baseline, self.current, self.ratio)

    def __repr__(self):
        return "<Delta %s>" % self.describe()


def _row_identity(row: dict) -> Tuple:
    return tuple(sorted(
        (key, value) for key, value in row.items()
        if key not in MEASUREMENT_KEYS and key not in IGNORED_KEYS))


def compare_exports(baseline: dict, current: dict) -> List[Delta]:
    """All measurement deltas between two ``--json`` exports."""
    deltas: List[Delta] = []
    experiments = set(baseline.get("experiments", {})) \
        & set(current.get("experiments", {}))
    for name in sorted(experiments):
        base_rows = {_row_identity(row): row
                     for row in baseline["experiments"][name]["rows"]}
        for row in current["experiments"][name]["rows"]:
            identity = _row_identity(row)
            base_row = base_rows.get(identity)
            if base_row is None:
                continue
            for key in sorted(MEASUREMENT_KEYS & set(row)):
                before, after = base_row.get(key), row.get(key)
                if isinstance(before, (int, float)) \
                        and isinstance(after, (int, float)):
                    deltas.append(Delta(name, identity, key,
                                        float(before), float(after)))
    return deltas


def regressions(deltas: List[Delta], threshold: float = 1.5) -> List[Delta]:
    """Deltas whose change exceeds the threshold, either direction.

    Timing metrics regress when they grow; ``relative_throughput``
    regresses when it shrinks.
    """
    flagged = []
    for delta in deltas:
        ratio = delta.ratio
        if delta.metric == "relative_throughput":
            if ratio > 0 and 1 / max(ratio, 1e-9) > threshold:
                flagged.append(delta)
        elif ratio > threshold:
            flagged.append(delta)
    return flagged


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two experiment JSON exports.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="flag changes beyond this factor "
                             "(default 1.5x)")
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        base = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        cur = json.load(handle)
    deltas = compare_exports(base, cur)
    flagged = regressions(deltas, args.threshold)
    print("%d comparable measurements, %d beyond %.2fx"
          % (len(deltas), len(flagged), args.threshold))
    for delta in flagged:
        print("  REGRESSION " + delta.describe())
    return 1 if flagged else 0


if __name__ == "__main__":
    raise SystemExit(main())
