"""Fixed-width tables and text bar charts for experiment reports.

The paper presents Figures 16–22 as bar charts and scatter plots; on a
terminal the same information renders as tables plus proportional text
bars, which is what every ``repro.bench.figures`` experiment returns.
"""

from __future__ import annotations

from typing import Optional, Sequence

BAR_WIDTH = 40


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width table with a header rule."""
    columns = [list(map(_cell, column))
               for column in zip(headers, *rows)] if rows else \
        [[_cell(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(map(_cell, headers),
                                                      widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_cell(value).ljust(width)
                               for value, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    if isinstance(value, bool):
        return "X" if value else ""
    return str(value)


def bar(value: float, maximum: float = 1.0, width: int = BAR_WIDTH) -> str:
    """A proportional text bar, e.g. for relative throughput in [0,1]."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(value, maximum) / maximum))
    return "#" * filled


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: Optional[str] = None,
              maximum: Optional[float] = None,
              unit: str = "") -> str:
    """Horizontal text bar chart with one row per label."""
    peak = maximum if maximum is not None else (max(values) if values else 1.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        lines.append("%s  %s %.3f%s" % (label.ljust(label_width),
                                        bar(value, peak).ljust(BAR_WIDTH),
                                        value, unit))
    return "\n".join(lines)
