"""Uniform adapters over every engine in the study (Figure 14's rows).

Each adapter exposes:

* capability flags — the columns of Figure 14 (streaming, buffered
  predicate evaluation, multiple predicates, closure, aggregation);
* ``compile(query)`` — query-to-engine build (Figure 18's dark bar);
* ``preprocess(engine, source)`` — data loading/indexing for
  non-streaming systems (Figure 18's gray bar; a no-op for streaming
  engines);
* ``query(engine, source)`` — result production;
* ``run(query, source)`` — all three in sequence, returning the result
  list (or document-match ids for pure filters).

``can_run(query)`` mirrors the paper's "not all the systems can handle
all XPath queries": XMLTK refuses predicates, XSQ-NC refuses closures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.baselines.dom import DomEngine
from repro.baselines.fulltext import FullTextEngine
from repro.baselines.pureparser import PureParser
from repro.baselines.stx import StxEngine
from repro.baselines.xmltk import XmltkEngine
from repro.xpath.ast import Query
from repro.xpath.parser import parse_query
from repro.xsq.engine import XSQEngine
from repro.xsq.nc import XSQEngineNC


class CountingSink:
    """Result collector that counts without retaining.

    Streaming systems write results to their output as they go; keeping
    them in a Python list would charge the engine's memory measurement
    for the caller's result set.  Engines accept any object with
    ``append``.
    """

    def __init__(self):
        self.count = 0

    def append(self, _value) -> None:
        self.count += 1

    def __len__(self) -> int:
        return self.count


class SystemAdapter:
    """Base adapter; subclasses bind one engine class.

    ``use_observability(obs)`` attaches an
    :class:`repro.obs.Observability` bundle; with one attached,
    :meth:`run` wraps the three phases in spans (``compile`` /
    ``preprocess`` / ``query``, each labelled with the system name) and
    folds phase timings and engine-reported run stats into the metrics
    registry — so every baseline in the Figure 14 roster reports
    comparable metrics, not just the XSQ engines.
    """

    name = ""
    language = ""
    streaming = False
    buffered_predicates = False
    multiple_predicates = False
    closures = False
    aggregation = False
    #: Optional Observability bundle; ``None`` keeps phases untimed.
    obs = None

    def use_observability(self, obs) -> "SystemAdapter":
        """Attach an observability bundle; returns self for chaining."""
        self.obs = obs
        return self

    def can_run(self, query: Union[str, Query]) -> bool:
        query = parse_query(query) if isinstance(query, str) else query
        if query.has_closure and not self.closures:
            return False
        if query.predicate_count and not self.multiple_predicates:
            return False
        if query.output.is_aggregate and not self.aggregation:
            return False
        return True

    def compile(self, query: Union[str, Query]):
        raise NotImplementedError

    def preprocess(self, engine, source) -> None:
        """Data-loading phase; default is the streaming no-op."""

    def query(self, engine, source) -> List[str]:
        raise NotImplementedError

    def run(self, query: Union[str, Query], source) -> List[str]:
        obs = self.obs
        if obs is None:
            engine = self.compile(query)
            self.preprocess(engine, source)
            return self.query(engine, source)
        with obs.span("system-run", system=self.name):
            with obs.span("compile", system=self.name) as compile_span:
                engine = self.compile(query)
            with obs.span("preprocess", system=self.name) as pre_span:
                self.preprocess(engine, source)
            with obs.span("query", system=self.name) as query_span:
                results = self.query(engine, source)
        self._record_phases(obs, compile_span, pre_span, query_span,
                            len(results) if results is not None else 0)
        # Engines that carry the bundle themselves (the XSQ adapters
        # pass it through compile) already recorded their run stats
        # under their own engine label; don't double count.
        if getattr(engine, "obs", None) is None:
            stats = getattr(engine, "last_stats", None)
            if stats is not None:
                obs.record_run(self.name, stats,
                               seconds=query_span.duration)
        return results

    def _record_phases(self, obs, compile_span, pre_span, query_span,
                       result_count: int) -> None:
        metrics = obs.metrics
        for phase, span in (("compile", compile_span),
                            ("preprocess", pre_span),
                            ("query", query_span)):
            metrics.gauge("repro_phase_seconds",
                          "wall time of the Figure 18 phases",
                          system=self.name, phase=phase).set(span.duration)
        metrics.counter("repro_system_results_total",
                        "results produced per system",
                        system=self.name).inc(result_count)

    def query_discarding(self, engine, source) -> int:
        """Produce results without retaining them; returns the count.

        Non-streaming engines materialize the document anyway, so the
        default simply drops the list; streaming adapters override this
        with a counting sink so their memory stays genuinely flat.
        """
        return len(self.query(engine, source))

    def __repr__(self):
        return "<%s adapter>" % self.name


class XsqFAdapter(SystemAdapter):
    name = "XSQ-F"
    language = "XPath"
    streaming = True
    buffered_predicates = True
    multiple_predicates = True
    closures = True
    aggregation = True

    def compile(self, query):
        return XSQEngine(query, obs=self.obs)

    def query(self, engine, source):
        return engine.run(source)

    def query_discarding(self, engine, source) -> int:
        sink = CountingSink()
        engine.run(source, sink=sink)
        return sink.count


class XsqNCAdapter(SystemAdapter):
    name = "XSQ-NC"
    language = "XPath"
    streaming = True
    buffered_predicates = True
    multiple_predicates = True
    closures = False
    aggregation = True

    def compile(self, query):
        return XSQEngineNC(query, obs=self.obs)

    def query(self, engine, source):
        return engine.run(source)

    def query_discarding(self, engine, source) -> int:
        sink = CountingSink()
        engine.run(source, sink=sink)
        return sink.count


class XmltkAdapter(SystemAdapter):
    name = "XMLTK"
    language = "XPath"
    streaming = True
    buffered_predicates = False
    multiple_predicates = False
    closures = True
    aggregation = False

    def compile(self, query):
        return XmltkEngine(query)

    def query(self, engine, source):
        return engine.run(source)

    def query_discarding(self, engine, source) -> int:
        sink = CountingSink()
        engine.run(source, sink=sink)
        return sink.count


class SaxonAdapter(SystemAdapter):
    """DOM-based evaluation: the Saxon profile (load all, then query)."""

    name = "Saxon"
    language = "XSLT"
    streaming = False
    buffered_predicates = True
    multiple_predicates = True
    closures = True
    aggregation = True

    def compile(self, query):
        return DomEngine(query)

    def preprocess(self, engine, source):
        engine.preprocess(source)

    def query(self, engine, source):
        return engine.run_query()


class GalaxAdapter(SaxonAdapter):
    """Galax materializes the document like Saxon; in this reproduction
    both map to the DOM engine (the paper's distinction — OCaml runtime,
    static typing — does not survive translation to Python)."""

    name = "Galax"
    language = "XQuery"


class XQEngineAdapter(SystemAdapter):
    name = "XQEngine"
    language = "XQuery"
    streaming = False
    buffered_predicates = True
    multiple_predicates = True
    closures = True
    aggregation = True

    def compile(self, query):
        return FullTextEngine(query)

    def preprocess(self, engine, source):
        engine.preprocess(source)

    def query(self, engine, source):
        return engine.run_query()


class JoostAdapter(SystemAdapter):
    """STX: streaming, predicates from preceding data only, no buffering."""

    name = "Joost"
    language = "STX"
    streaming = True
    buffered_predicates = False
    multiple_predicates = True
    closures = True
    aggregation = True

    def compile(self, query):
        return StxEngine(query)

    def query(self, engine, source):
        return engine.run(source)

    def query_discarding(self, engine, source) -> int:
        sink = CountingSink()
        engine.run(source, sink=sink)
        return sink.count


class PureParserAdapter(SystemAdapter):
    """Parse-only; the normalization baseline, not a query system."""

    name = "PureParser"
    language = "-"
    streaming = True

    def can_run(self, query) -> bool:
        return True

    def compile(self, query):
        return PureParser()

    def query(self, engine, source):
        engine.run(source)
        return []


#: The Figure 14 roster, in the paper's order.
ADAPTERS: Dict[str, SystemAdapter] = {
    adapter.name: adapter
    for adapter in (XsqFAdapter(), XsqNCAdapter(), XmltkAdapter(),
                    SaxonAdapter(), XQEngineAdapter(), GalaxAdapter(),
                    JoostAdapter())
}


def adapters_for(query: Union[str, Query],
                 names: Optional[Sequence[str]] = None) -> List[SystemAdapter]:
    """Adapters (in roster order) able to run ``query``."""
    parsed = parse_query(query) if isinstance(query, str) else query
    pool = (ADAPTERS.values() if names is None
            else [ADAPTERS[name] for name in names])
    return [adapter for adapter in pool if adapter.can_run(parsed)]


def feature_matrix() -> List[dict]:
    """Rows of Figure 14: per-system capability flags."""
    rows = []
    for adapter in ADAPTERS.values():
        rows.append({
            "name": adapter.name,
            "language": adapter.language,
            "streaming": adapter.streaming,
            "buffered_predicates": adapter.buffered_predicates,
            "multiple_predicates": adapter.multiple_predicates,
            "closures": adapter.closures,
            "aggregation": adapter.aggregation,
        })
    return rows
