"""Command-line experiment runner: ``python -m repro.bench fig16``.

``all`` runs every experiment in order.  ``--scale`` shrinks dataset
sizes (0.25 = quarter-size inputs), ``--repeat`` takes the best of N
timed runs, ``--data-dir`` relocates the dataset cache, ``--jobs N``
runs independent experiments through the worker pool
(:mod:`repro.parallel`) — per-figure output and the ``--json`` dump are
identical to ``--jobs 1`` because the pool's ordered merge reports
experiments in the same order the serial loop would.

``python -m repro.bench diff`` is the perf-regression ledger: it
compares BENCH_*.json artifacts (working tree vs git HEAD by default)
and appends the outcome to BENCH_HISTORY.jsonl — see
:mod:`repro.bench.ledger`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.figures import EXPERIMENTS


class _ExperimentSpec:
    """Per-worker runner for ``--jobs``: one experiment per task.

    Each worker owns a :class:`~repro.bench.datasets.DatasetCache` view
    of the same directory; concurrent first-time generation is safe
    because the cache writes through pid-unique temp files.  Results
    ship home as plain dicts (report text + structured rows), never as
    live experiment objects.
    """

    def __init__(self, data_dir, scale: float, repeat: int):
        self.data_dir = data_dir
        self.scale = scale
        self.repeat = repeat

    def setup(self, worker_id: int):
        from repro.bench.datasets import DatasetCache
        cache = DatasetCache(directory=self.data_dir, scale=self.scale)

        def run(name):
            result = EXPERIMENTS[name](cache=cache, repeat=self.repeat)
            return {"report": result.report(), "title": result.title,
                    "rows": result.rows, "notes": result.notes}, None

        return run


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        # Perf-regression ledger: not an experiment, so dispatch before
        # argparse pins ``experiment`` to the figure list.
        from repro.bench.ledger import main as diff_main
        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier (default 1.0)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed repetitions, best-of (default 1)")
    parser.add_argument("--data-dir", default=None,
                        help="dataset cache directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run independent experiments in N worker "
                             "processes (default 1 = serial; output and "
                             "JSON are identical either way)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also dump structured rows to this file "
                             "(for regenerating EXPERIMENTS.md)")
    args = parser.parse_args(argv)

    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    from repro.parallel.pool import Task, TaskPool
    spec = _ExperimentSpec(args.data_dir, args.scale, args.repeat)
    pool = TaskPool(spec, workers=max(1, min(args.jobs, len(names))),
                    chunk_size=1)
    dump = {}
    for outcome in pool.run(Task(name, name) for name in names):
        if outcome.error is not None:
            print("bench: %s" % outcome.error, file=sys.stderr)
            return 1
        print(outcome.result["report"])
        print()
        dump[outcome.label] = {
            "title": outcome.result["title"],
            "rows": outcome.result["rows"],
            "notes": outcome.result["notes"],
        }
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as out:
            json.dump({"scale": args.scale, "repeat": args.repeat,
                       "experiments": dump}, out, indent=2)
        print("wrote %s" % args.json_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
