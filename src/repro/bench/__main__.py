"""Command-line experiment runner: ``python -m repro.bench fig16``.

``all`` runs every experiment in order.  ``--scale`` shrinks dataset
sizes (0.25 = quarter-size inputs), ``--repeat`` takes the best of N
timed runs, ``--data-dir`` relocates the dataset cache.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.datasets import DatasetCache
from repro.bench.figures import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier (default 1.0)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed repetitions, best-of (default 1)")
    parser.add_argument("--data-dir", default=None,
                        help="dataset cache directory")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also dump structured rows to this file "
                             "(for regenerating EXPERIMENTS.md)")
    args = parser.parse_args(argv)

    cache = DatasetCache(directory=args.data_dir, scale=args.scale)
    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    dump = {}
    for name in names:
        result = EXPERIMENTS[name](cache=cache, repeat=args.repeat)
        print(result.report())
        print()
        dump[name] = {
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as out:
            json.dump({"scale": args.scale, "repeat": args.repeat,
                       "experiments": dump}, out, indent=2)
        print("wrote %s" % args.json_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
