"""Measurement harness for regenerating the paper's evaluation section.

* :mod:`repro.bench.systems` — uniform adapters over every engine, with
  the phase split (compile / preprocess / query) of Figure 18 and the
  capability flags of Figure 14.
* :mod:`repro.bench.metrics` — wall-clock throughput, relative
  throughput (normalized by PureParser, Section 6.2), and peak-memory
  measurement.
* :mod:`repro.bench.datasets` — generated dataset files, cached on disk
  so repeated bench runs reuse them.
* :mod:`repro.bench.figures` — one experiment function per table/figure
  (Fig 14–22 plus the two ablations), each returning structured rows
  and a formatted report.
* :mod:`repro.bench.report` — fixed-width tables and text bar charts.

Run any experiment from the command line::

    python -m repro.bench fig16
    python -m repro.bench all --scale 0.25
"""

from repro.bench.metrics import (
    MemoryMeasurement,
    ThroughputMeasurement,
    clear_baseline_cache,
    measure_memory,
    measure_throughput,
    relative_throughput,
)
from repro.bench.systems import ADAPTERS, SystemAdapter, adapters_for
from repro.bench.datasets import DatasetCache

__all__ = [
    "MemoryMeasurement",
    "ThroughputMeasurement",
    "clear_baseline_cache",
    "measure_memory",
    "measure_throughput",
    "relative_throughput",
    "ADAPTERS",
    "SystemAdapter",
    "adapters_for",
    "DatasetCache",
]
