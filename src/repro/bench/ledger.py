"""Perf-regression ledger: diff schema-versioned BENCH_*.json artifacts.

The bench harness commits its measurements as JSON artifacts
(``BENCH_throughput.json``, ``BENCH_memory.json``,
``BENCH_parallel.json``, ``BENCH_latency.json``).  This module makes
perf claims mechanically
checkable across PRs:

* ``python -m repro.bench diff`` — compare every committed artifact
  against the working tree (baseline defaults to ``git show HEAD:...``),
  print per-workload deltas, and flag regressions beyond a threshold;
* ``python -m repro.bench diff OLD.json NEW.json`` — compare two
  explicit artifacts of the same kind;
* every diff appends one JSON line to ``BENCH_HISTORY.jsonl`` (unless
  ``--no-history``), so the repository accumulates a perf trajectory;
* ``--check`` exits non-zero when any regression crosses the
  threshold — the CI hook.

Metric direction is inferred from the name: rates (``mb_per_s``,
``docs_per_s``, ``*speedup*``, ``*fraction*``) regress when they drop,
everything else (``seconds``, ``peak_*``, ``delay_*``) regresses when
it grows.  A workload present only in the baseline is reported as
*dropped* (and counts as a failure under ``--check``); one present only
in the new artifact is *added* (informational).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

#: Artifacts ``diff`` picks up by default (repo-root relative).
DEFAULT_ARTIFACTS = ("BENCH_throughput.json", "BENCH_memory.json",
                     "BENCH_parallel.json", "BENCH_latency.json")

#: Default regression threshold: a metric must move >20% in the bad
#: direction to be flagged (benchmarks in shared CI runners are noisy;
#: the committed artifacts are medians-of-repeats but still jitter).
DEFAULT_THRESHOLD = 0.20

HISTORY_FILE = "BENCH_HISTORY.jsonl"

#: Name fragments marking higher-is-better metrics; everything else
#: (seconds, peaks, delays, byte counts) is lower-is-better.
_HIGHER_BETTER = ("mb_per_s", "docs_per_s", "per_s", "speedup",
                  "fraction", "throughput")


def metric_direction(name: str) -> bool:
    """True when larger values of ``name`` are better."""
    return any(fragment in name for fragment in _HIGHER_BETTER)


def load_artifact(spec: str, repo_root: str = ".") -> dict:
    """Load an artifact from a path or a ``REF:path`` git spec."""
    if ":" in spec and not os.path.exists(spec):
        ref, _, path = spec.partition(":")
        return _load_git(ref, path, repo_root)
    with open(spec, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_git(ref: str, path: str, repo_root: str) -> dict:
    out = subprocess.run(
        ["git", "show", "%s:%s" % (ref, path)],
        cwd=repo_root, capture_output=True, text=True)
    if out.returncode != 0:
        raise FileNotFoundError(
            "git show %s:%s failed: %s"
            % (ref, path, out.stderr.strip() or "unknown error"))
    return json.loads(out.stdout)


# -- flattening -----------------------------------------------------------

def flatten(artifact: dict) -> Dict[Tuple[str, str], float]:
    """``(workload_key, metric_name) -> value`` rows for any known kind.

    The workload key is the identity the paper's tables use (dataset +
    size for throughput, figure + engine + size for memory, dataset +
    corpus shape for parallel); unknown kinds fall back to a generic
    walk so future artifacts diff without code changes.
    """
    kind = artifact.get("bench", "unknown")
    rows: Dict[Tuple[str, str], float] = {}
    for workload in artifact.get("workloads", ()):
        if kind == "throughput":
            key = "%s@%s" % (workload.get("dataset", "?"),
                             workload.get("target_bytes", "?"))
            for engine, cell in workload.get("engines", {}).items():
                for metric in ("seconds", "mb_per_s"):
                    if metric in cell:
                        rows[(key, "%s.%s" % (engine, metric))] = \
                            cell[metric]
            for metric in ("fast_speedup_vs_interpreted",
                           "codegen_speedup_vs_interpreted",
                           "codegen_speedup_vs_fast",
                           "fast_fraction_of_ceiling"):
                if metric in workload:
                    rows[(key, metric)] = workload[metric]
            selection = workload.get("selection")
            if selection is not None:
                # 1.0 when auto selection lands on the fast tier; the
                # "fraction" fragment makes a 1 -> 0 move (a workload
                # dropping off the fast tier) a flagged regression.
                rows[(key, "selection.fast_tier_fraction")] = (
                    1.0 if selection.get("tier") in ("codegen", "fast")
                    else 0.0)
        elif kind == "memory-accounting":
            key = "%s/%s/%s@%s" % (
                workload.get("figure", "?"), workload.get("dataset", "?"),
                workload.get("engine", "?"),
                workload.get("target_bytes", "?"))
            for metric in ("peak_items", "peak_bytes", "peak_instances",
                           "delay_mean", "delay_max"):
                if metric in workload:
                    rows[(key, metric)] = workload[metric]
        elif kind == "latency":
            # Delivery-latency distributions from the serve pipeline.
            # The metric names deliberately avoid every higher-is-better
            # fragment: latency regresses when it *grows*.
            key = "subs%s@%sdocs" % (workload.get("subscribers", "?"),
                                     workload.get("documents", "?"))
            for metric in ("delivery_p50_seconds", "delivery_p99_seconds",
                           "delivery_max_seconds"):
                if metric in workload:
                    rows[(key, metric)] = workload[metric]
        elif kind == "parallel":
            key = "%s@%sx%s" % (workload.get("dataset", "?"),
                                workload.get("docs", "?"),
                                workload.get("doc_bytes", "?"))
            for workers, cell in workload.get("workers", {}).items():
                for metric in ("seconds", "docs_per_s", "mb_per_s",
                               "speedup_vs_serial"):
                    if metric in cell:
                        rows[(key, "w%s.%s" % (workers, metric))] = \
                            cell[metric]
        else:
            key = str(workload.get("dataset")
                      or workload.get("name")
                      or workload.get("query", "?"))
            for metric, value in workload.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    rows[(key, metric)] = value
    return rows


# -- comparison -----------------------------------------------------------

class Delta:
    """One metric's movement between baseline and new."""

    __slots__ = ("workload", "metric", "old", "new", "ratio",
                 "higher_better", "regressed", "improved")

    def __init__(self, workload: str, metric: str, old: float, new: float,
                 threshold: float):
        self.workload = workload
        self.metric = metric
        self.old = old
        self.new = new
        self.ratio = (new / old) if old else (float("inf") if new else 1.0)
        self.higher_better = metric_direction(metric)
        if self.higher_better:
            bad = self.ratio < 1.0 - threshold
            good = self.ratio > 1.0 + threshold
        else:
            bad = self.ratio > 1.0 + threshold
            good = self.ratio < 1.0 - threshold
        self.regressed = bad
        self.improved = good

    @property
    def change_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0)

    def as_dict(self) -> dict:
        return {"workload": self.workload, "metric": self.metric,
                "old": self.old, "new": self.new,
                "change_pct": round(self.change_pct, 2),
                "regressed": self.regressed, "improved": self.improved}


class DiffResult:
    """Comparison of one artifact pair."""

    def __init__(self, kind: str, deltas: List[Delta],
                 dropped: List[Tuple[str, str]], added: List[Tuple[str, str]],
                 schema_mismatch: Optional[str] = None):
        self.kind = kind
        self.deltas = deltas
        self.dropped = dropped
        self.added = added
        self.schema_mismatch = schema_mismatch

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        return (not self.regressions and not self.dropped
                and self.schema_mismatch is None)

    def as_dict(self) -> dict:
        return {
            "bench": self.kind,
            "metrics": len(self.deltas),
            "regressions": [d.as_dict() for d in self.regressions],
            "improvements": [d.as_dict() for d in self.improvements],
            "dropped": ["%s %s" % pair for pair in self.dropped],
            "added": ["%s %s" % pair for pair in self.added],
            "schema_mismatch": self.schema_mismatch,
            "ok": self.ok,
        }


def diff_artifacts(old: dict, new: dict,
                   threshold: float = DEFAULT_THRESHOLD) -> DiffResult:
    """Compare two loaded artifacts of the same bench kind."""
    kind = new.get("bench", old.get("bench", "unknown"))
    mismatch = None
    if old.get("bench") != new.get("bench"):
        mismatch = ("bench kind %r vs %r"
                    % (old.get("bench"), new.get("bench")))
    elif old.get("schema_version") != new.get("schema_version"):
        mismatch = ("schema_version %r vs %r — regenerate the baseline "
                    "before comparing"
                    % (old.get("schema_version"), new.get("schema_version")))
    old_rows = flatten(old)
    new_rows = flatten(new)
    deltas = [Delta(key[0], key[1], old_rows[key], new_rows[key], threshold)
              for key in sorted(old_rows) if key in new_rows]
    dropped = sorted(key for key in old_rows if key not in new_rows)
    added = sorted(key for key in new_rows if key not in old_rows)
    return DiffResult(kind, deltas, dropped, added, mismatch)


# -- rendering ------------------------------------------------------------

def render(result: DiffResult, old_label: str, new_label: str,
           verbose: bool = False) -> str:
    lines = ["== %s: %s -> %s" % (result.kind, old_label, new_label)]
    if result.schema_mismatch:
        lines.append("  !! %s" % result.schema_mismatch)
    flagged = {id(d) for d in result.regressions}
    flagged |= {id(d) for d in result.improvements}
    shown = [d for d in result.deltas
             if verbose or id(d) in flagged]
    width = max((len(d.workload) for d in shown), default=8)
    for delta in shown:
        marker = ("REGRESSED" if delta.regressed
                  else "improved" if delta.improved else "")
        lines.append(
            "  %-*s %-28s %12.4g -> %-12.4g %+7.1f%%  %s"
            % (width, delta.workload, delta.metric, delta.old,
               delta.new, delta.change_pct, marker))
    for workload, metric in result.dropped:
        lines.append("  %-*s %-28s DROPPED (present only in baseline)"
                     % (width, workload, metric))
    for workload, metric in result.added:
        lines.append("  %-*s %-28s added" % (width, workload, metric))
    lines.append(
        "  %d metrics compared, %d regressed, %d improved%s"
        % (len(result.deltas), len(result.regressions),
           len(result.improvements),
           ", %d dropped" % len(result.dropped) if result.dropped else ""))
    return "\n".join(lines)


def append_history(results: List[Tuple[str, DiffResult]], old_label: str,
                   new_label: str, threshold: float,
                   path: str = HISTORY_FILE) -> None:
    record = {
        "type": "bench-diff",
        "ts": round(time.time(), 3),
        "baseline": old_label,
        "current": new_label,
        "threshold": threshold,
        "artifacts": {name: result.as_dict() for name, result in results},
        "ok": all(result.ok for _, result in results),
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


# -- CLI ------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench diff",
        description="Compare BENCH_*.json artifacts (working tree vs git "
                    "HEAD by default), print per-workload deltas, and "
                    "append the outcome to %s." % HISTORY_FILE)
    parser.add_argument("artifacts", nargs="*", default=[],
                        help="either two explicit artifacts (OLD NEW, "
                             "paths or REF:path specs) or a list of "
                             "working-tree artifacts to check against "
                             "--against (default: every committed "
                             "BENCH_*.json)")
    parser.add_argument("--against", default="HEAD", metavar="REF",
                        help="git ref supplying the baseline when OLD "
                             "is not given explicitly (default: HEAD)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD, metavar="FRACTION",
                        help="flag metrics moving more than this "
                             "fraction in the bad direction (default: "
                             "%.2f)" % DEFAULT_THRESHOLD)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any regression (or dropped "
                             "workload, or schema mismatch) is found")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared metric, not just "
                             "flagged ones")
    parser.add_argument("--history", default=HISTORY_FILE, metavar="PATH",
                        help="ledger file to append to (default: "
                             "%s)" % HISTORY_FILE)
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this diff to the ledger")
    args = parser.parse_args(argv)

    pairs: List[Tuple[str, str, str]] = []  # (name, old_spec, new_spec)
    if len(args.artifacts) == 2 and all(
            os.path.exists(a) or ":" in a for a in args.artifacts):
        old_spec, new_spec = args.artifacts
        pairs.append((os.path.basename(new_spec.split(":")[-1]),
                      old_spec, new_spec))
        old_label, new_label = old_spec, new_spec
    else:
        names = args.artifacts or [name for name in DEFAULT_ARTIFACTS
                                   if os.path.exists(name)]
        if not names:
            print("bench diff: no BENCH_*.json artifacts found here",
                  file=sys.stderr)
            return 2
        for name in names:
            pairs.append((os.path.basename(name),
                          "%s:%s" % (args.against, name), name))
        old_label, new_label = args.against, "working tree"

    results: List[Tuple[str, DiffResult]] = []
    failures = 0
    for name, old_spec, new_spec in pairs:
        try:
            old = load_artifact(old_spec)
            new = load_artifact(new_spec)
        except (OSError, ValueError) as exc:
            print("bench diff: cannot load %s vs %s: %s"
                  % (old_spec, new_spec, exc), file=sys.stderr)
            failures += 1
            continue
        result = diff_artifacts(old, new, threshold=args.threshold)
        results.append((name, result))
        print(render(result, old_label, new_label, verbose=args.verbose))
        print()
    if not args.no_history and results:
        try:
            append_history(results, old_label, new_label, args.threshold,
                           path=args.history)
        except OSError as exc:
            print("bench diff: cannot append to %s: %s"
                  % (args.history, exc), file=sys.stderr)
    bad = failures + sum(0 if result.ok else 1 for _, result in results)
    if bad:
        print("bench diff: %d artifact(s) regressed or failed to load"
              % bad, file=sys.stderr)
        return 1 if args.check else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
