"""Throughput and memory measurement (Sections 6.2 and 6.3).

Throughput is bytes of input per second of wall time.  Because Python
engines cannot be compared meaningfully to C ones on raw numbers, the
paper normalizes by a PureParser on the same input — *relative
throughput* — and so do we: every engine in this repository parses with
the same ``xml.sax`` machinery, so relative throughput isolates the
query-processing overhead exactly as intended.

Memory is measured two ways and both are reported:

* ``tracemalloc`` peak — total Python allocation high-water mark during
  the run (the analogue of the JVM heap numbers in Figures 19/20);
* engine-reported peaks (buffered items / live instances) where the
  engine exposes them, which track the paper's "only what must be
  buffered" claim directly.
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc
from typing import Callable, List, Optional

from repro.bench.systems import PureParserAdapter, SystemAdapter


class ThroughputMeasurement:
    """One timed engine run over one input file."""

    __slots__ = ("system", "seconds", "input_bytes", "result_count",
                 "compile_seconds", "preprocess_seconds", "query_seconds")

    def __init__(self, system: str, seconds: float, input_bytes: int,
                 result_count: int, compile_seconds: float = 0.0,
                 preprocess_seconds: float = 0.0,
                 query_seconds: float = 0.0):
        self.system = system
        self.seconds = seconds
        self.input_bytes = input_bytes
        self.result_count = result_count
        self.compile_seconds = compile_seconds
        self.preprocess_seconds = preprocess_seconds
        self.query_seconds = query_seconds

    @property
    def mb_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.input_bytes / 1e6 / self.seconds

    def __repr__(self):
        return ("<%s: %.3fs, %.2f MB/s, %d results>"
                % (self.system, self.seconds, self.mb_per_second,
                   self.result_count))


class MemoryMeasurement:
    """Peak memory for one engine run over one input file."""

    __slots__ = ("system", "input_bytes", "peak_alloc_bytes",
                 "peak_buffered_items", "result_count")

    def __init__(self, system: str, input_bytes: int, peak_alloc_bytes: int,
                 peak_buffered_items: Optional[int], result_count: int):
        self.system = system
        self.input_bytes = input_bytes
        self.peak_alloc_bytes = peak_alloc_bytes
        self.peak_buffered_items = peak_buffered_items
        self.result_count = result_count

    @property
    def alloc_ratio(self) -> float:
        """Peak allocation as a multiple of the input size."""
        return self.peak_alloc_bytes / max(1, self.input_bytes)

    def __repr__(self):
        return ("<%s: peak %.2f MB on %.2f MB input (x%.2f)>"
                % (self.system, self.peak_alloc_bytes / 1e6,
                   self.input_bytes / 1e6, self.alloc_ratio))


def _input_size(path: str) -> int:
    return os.path.getsize(path)


def measure_throughput(adapter: SystemAdapter, query: str, path: str,
                       repeat: int = 1,
                       obs=None) -> ThroughputMeasurement:
    """Time a full run (compile + preprocess + query), best of ``repeat``.

    Phases are timed separately so Figure 18 can split the stacked bar.
    ``obs`` accepts an :class:`repro.obs.Observability` bundle: each
    repeat becomes a ``measure`` span (with the adapter's phase spans
    nested underneath) and the best run's numbers land in the metrics
    registry.
    """
    best: Optional[ThroughputMeasurement] = None
    size = _input_size(path)
    previous_obs = adapter.obs
    if obs is not None:
        adapter.use_observability(obs)
    try:
        for _ in range(max(1, repeat)):
            span = (obs.span("measure", system=adapter.name, query=query)
                    if obs is not None else None)
            if span is not None:
                span.__enter__()
            t0 = time.perf_counter()
            engine = adapter.compile(query)
            t1 = time.perf_counter()
            adapter.preprocess(engine, path)
            t2 = time.perf_counter()
            results = adapter.query(engine, path)
            t3 = time.perf_counter()
            if span is not None:
                span.__exit__(None, None, None)
            run = ThroughputMeasurement(
                system=adapter.name,
                seconds=t3 - t0,
                input_bytes=size,
                result_count=len(results) if results is not None else 0,
                compile_seconds=t1 - t0,
                preprocess_seconds=t2 - t1,
                query_seconds=t3 - t2,
            )
            if best is None or run.seconds < best.seconds:
                best = run
    finally:
        adapter.obs = previous_obs
    if obs is not None:
        obs.metrics.gauge(
            "repro_throughput_mb_per_second",
            "bytes of input per second of wall time (best of repeats)",
            system=adapter.name).set(best.mb_per_second)
        for phase, seconds in (("compile", best.compile_seconds),
                               ("preprocess", best.preprocess_seconds),
                               ("query", best.query_seconds)):
            obs.metrics.gauge("repro_phase_seconds",
                              "wall time of the Figure 18 phases",
                              system=adapter.name, phase=phase).set(seconds)
    return best


#: PureParser baseline seconds, keyed by (absolute path, mtime, size) so
#: a regenerated dataset file invalidates its entry automatically.
_BASELINE_CACHE: dict = {}


def _baseline_cache_key(path: str) -> tuple:
    stat = os.stat(path)
    return (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)


def clear_baseline_cache() -> None:
    """Drop memoized PureParser baselines (tests and long harness runs)."""
    _BASELINE_CACHE.clear()


def relative_throughput(measurement: ThroughputMeasurement,
                        path: str,
                        baseline_seconds: Optional[float] = None) -> float:
    """Normalize against a PureParser pass over the same file.

    Pass ``baseline_seconds`` to reuse one baseline across systems (the
    harness measures it once per dataset).  When it is omitted, the
    baseline is measured once per input file and memoized (keyed by
    path + mtime + size), so per-system calls don't re-parse the whole
    dataset each time.
    """
    if baseline_seconds is None:
        key = _baseline_cache_key(path)
        baseline_seconds = _BASELINE_CACHE.get(key)
        if baseline_seconds is None:
            baseline = measure_throughput(PureParserAdapter(), "/*", path)
            baseline_seconds = baseline.seconds
            _BASELINE_CACHE[key] = baseline_seconds
    if measurement.seconds <= 0:
        return 1.0
    return min(1.0, baseline_seconds / measurement.seconds)


def pureparser_seconds(path: str, repeat: int = 1) -> float:
    """Baseline parse time for ``path`` (best of ``repeat``)."""
    return measure_throughput(PureParserAdapter(), "/*", path,
                              repeat=repeat).seconds


def measure_memory(adapter: SystemAdapter, query: str,
                   path: str) -> MemoryMeasurement:
    """tracemalloc peak across compile + preprocess + query.

    Results are produced but not retained (a streaming system writes
    them to its output), so the measurement charges the engine only for
    what it actually buffers — the quantity Figures 19/20 compare.
    """
    size = _input_size(path)
    gc.collect()  # transient garbage from earlier runs would skew peaks
    tracemalloc.start()
    try:
        engine = adapter.compile(query)
        adapter.preprocess(engine, path)
        count = adapter.query_discarding(engine, path)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    buffered = None
    stats = getattr(engine, "last_stats", None)
    if stats is not None:
        buffered = stats.peak_buffered_items
    return MemoryMeasurement(
        system=adapter.name,
        input_bytes=size,
        peak_alloc_bytes=peak,
        peak_buffered_items=buffered,
        result_count=count,
    )


def time_callable(fn: Callable[[], object]) -> float:
    """Wall time of one call; tiny helper for ad-hoc phase timing."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
