"""On-disk cache of generated benchmark datasets.

Benchmark runs need the same files repeatedly (and Figure 19 needs a
whole series of DBLP excerpts); regenerating megabytes of XML per test
would dominate the timings.  The cache generates each (dataset, size)
pair once into a directory — default ``<repo>/.bench_data`` or
``$XSQ_BENCH_DATA`` — keyed by generator name, size and seed, and hands
out paths.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.datagen import (
    generate_colors,
    generate_dblp,
    generate_nasa,
    generate_ordered,
    generate_psd,
    generate_recursive,
    generate_shake,
)
from repro.datagen.toxgene import generate_predicate_probe

GENERATORS: Dict[str, Callable] = {
    "shake": generate_shake,
    "nasa": generate_nasa,
    "dblp": generate_dblp,
    "psd": generate_psd,
    "recursive": generate_recursive,
    "ordered": generate_ordered,
    "colors": generate_colors,
    "predicate_probe": generate_predicate_probe,
}

#: Default dataset sizes (bytes), scaled-down stand-ins for Figure 15's
#: 7.89/25/119/716 MB corpora in the paper's proportions.
DEFAULT_SIZES = {
    "shake": 2_000_000,
    "nasa": 4_000_000,
    "dblp": 8_000_000,
    "psd": 12_000_000,
    "recursive": 2_000_000,
    "ordered": 2_000_000,
    "colors": 2_000_000,
    "predicate_probe": 2_000_000,
}


def default_cache_dir() -> str:
    env = os.environ.get("XSQ_BENCH_DATA")
    if env:
        return env
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), ".bench_data")


class DatasetCache:
    """Generate-once store of benchmark inputs."""

    def __init__(self, directory: Optional[str] = None, scale: float = 1.0):
        self.directory = directory or default_cache_dir()
        self.scale = scale
        os.makedirs(self.directory, exist_ok=True)

    def path(self, name: str, size_bytes: Optional[int] = None,
             **generator_kwargs) -> str:
        """Path of the cached file, generating it on first use.

        ``scale`` multiplies the requested (or default) size, so a whole
        bench run can be shrunk with one knob (``--scale 0.25``).
        """
        generator = GENERATORS[name]
        size = int((size_bytes or DEFAULT_SIZES[name]) * self.scale)
        suffix = "".join(
            "_%s%s" % (key, value)
            for key, value in sorted(generator_kwargs.items()))
        filename = "%s_%d%s.xml" % (name, size, suffix)
        path = os.path.join(self.directory, filename)
        if not os.path.exists(path):
            # pid-unique temp name: concurrent generators (bench --jobs)
            # each build their own copy; the atomic replace makes the
            # last writer win with identical content.
            tmp = "%s.tmp.%d" % (path, os.getpid())
            generator(size, path=tmp, **generator_kwargs)
            os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete all cached files; returns how many were removed."""
        removed = 0
        for filename in os.listdir(self.directory):
            if filename.endswith(".xml") or ".xml.tmp" in filename:
                os.remove(os.path.join(self.directory, filename))
                removed += 1
        return removed
