"""Buffer & memory accounting: live occupancy, byte estimates, delays.

The paper's headline memory claim (Section 6, Figures 19-20) is that
XSQ buffers *only* items whose governing predicates are genuinely
unresolved — the set any streaming XPath processor must retain.  The
observability layer of ``repro.obs`` traces buffer *operations*; this
module accounts for buffer *state*, continuously:

* :class:`QueryAccount` — a live ledger per (engine, query): buffered
  item count and byte estimate with monotone high-water marks, per-BPDT
  occupancy, live predicate instances (the depth-vector cardinality of
  the current state set), and an emission-delay histogram measured on
  an **event-count clock** (stream events between enqueue and send), so
  every number is deterministic and replayable from an
  :class:`~repro.obs.events.EventTrace`;
* :class:`ResourceAccountant` — the bundle-level registry of accounts
  plus the shared clock, exposed as ``Observability(accounting=True)``
  and snapshot via :meth:`ResourceAccountant.snapshot`;
* :class:`BufferAuditor` — an online checker of the paper's discipline
  (``Observability(audit=True)`` / ``repro.compile(..., audit=True)``):
  every buffered item must be governed by at least one unresolved
  predicate, flushes and clears must respect the output-marking rules,
  sends must be in document order without duplicates, and the end of
  the stream must leave every queue empty.  Breaches surface as
  structured :class:`AuditViolation` records and a
  ``repro_buffer_audit_violations_total`` counter — never as silently
  wrong memory behavior.

The accountant piggybacks on the hooks :class:`repro.xsq.buffers.OutputQueue`
already exposes; engines attach a :class:`QueryAccount` per queue when
the bundle enables accounting and otherwise pay a single ``is None``
test per buffer operation (``benchmarks/bench_obs_overhead.py`` holds
the accounting-off path to the seed hot path).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

# Emission-delay bucket bounds, in *stream events* between an item's
# enqueue and its send, live in the shared bucket-ladder table in
# :mod:`repro.obs.metrics` (re-exported here for compatibility).
# Constant-delay enumeration (Muñoz & Riveros) predicts small values
# except when a predicate resolves late.
from repro.obs.metrics import DELAY_BUCKETS  # noqa: F401  (re-export)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.xsq.depthvector import packed_size

#: Flat per-item overhead estimate in bytes: one ``BufferItem`` (slots,
#: queue links, sequence number) plus its ledger entry.  The absolute
#: number matters less than charging it identically everywhere —
#: regressions are read as ratios against ``BENCH_memory.json``.
ITEM_OVERHEAD_BYTES = 96


class AuditViolation:
    """One breach of the buffer discipline, as structured data."""

    __slots__ = ("kind", "account", "item_seq", "clock", "detail")

    def __init__(self, kind: str, account: str, item_seq: Optional[int],
                 clock: int, detail: str):
        self.kind = kind
        self.account = account
        self.item_seq = item_seq
        self.clock = clock
        self.detail = detail

    def as_dict(self) -> dict:
        return {
            "type": "audit_violation",
            "kind": self.kind,
            "account": self.account,
            "item": self.item_seq,
            "clock": self.clock,
            "detail": self.detail,
        }

    def __repr__(self):
        return "<AuditViolation %s item=%r at event %d: %s>" % (
            self.kind, self.item_seq, self.clock, self.detail)


class BufferAuditor:
    """Online checker of the paper's necessary-buffering claim.

    The auditor never changes execution; it receives the same per-item
    lifecycle the accountant sees and records violations:

    ``buffered-without-predicate``
        an item whose every governing predicate was already resolved at
        enqueue survived into the next stream event without being
        output-marked — it was buffered unnecessarily;
    ``upload-downward``
        an ownership hop moved an item *down* the HPDT tree (uploads
        may only move items to ancestor BPDT buffers);
    ``upload-after-resolution`` / ``clear-after-flush`` /
    ``send-without-flush`` / ``*-unknown-item``
        lifecycle transitions out of order (a cleared item re-used, an
        output-marked item cleared, an emission with no prior flush);
    ``out-of-order-send`` / ``duplicate-send``
        document order or exactly-once emission broken;
    ``retained-at-finish``
        the stream ended — every predicate is resolved, so the HPDT
        position says every queue must be empty — yet an item was still
        buffered (the signature of a lost or corrupted flush).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 max_violations: int = 10_000):
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.max_violations = max_violations
        self.violations: List[AuditViolation] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, kind: str, account: str, item_seq: Optional[int],
                  clock: int, detail: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(
                AuditViolation(kind, account, item_seq, clock, detail))
        self.metrics.counter(
            "repro_buffer_audit_violations_total",
            "breaches of the paper's buffer discipline found by the "
            "online auditor", kind=kind).inc()

    def report(self) -> str:
        if not self.violations:
            return "audit: ok (0 violations)"
        lines = ["audit: %d violation(s)" % len(self.violations)]
        for violation in self.violations:
            lines.append("  [%s] %s item=%r at event %d: %s" % (
                violation.kind, violation.account, violation.item_seq,
                violation.clock, violation.detail))
        return "\n".join(lines)


class _Entry:
    """Ledger record for one currently buffered item."""

    __slots__ = ("bytes", "enq_clock", "governed", "flushed", "owner")

    def __init__(self, nbytes: int, enq_clock: int, governed: int,
                 owner: Tuple[int, int]):
        self.bytes = nbytes
        self.enq_clock = enq_clock
        self.governed = governed
        self.flushed = False
        self.owner = owner


class QueryAccount:
    """Live resource ledger for one (engine, query) output queue.

    Hooks are called by :class:`~repro.xsq.buffers.OutputQueue` (buffer
    operations) and the runtimes (live predicate-instance population).
    All figures are maintained both as plain attributes (for cheap
    :meth:`snapshot` / ``xsq top`` rendering) and as registry metrics
    (gauges with ``track_max`` high-water companions, plus the
    emission-delay histogram).
    """

    def __init__(self, accountant: "ResourceAccountant", engine: str,
                 label: str):
        self.accountant = accountant
        self.engine = engine
        self.label = label
        metrics = accountant.metrics
        labels = {"engine": engine, "query": label}
        self._items_gauge = metrics.gauge(
            "repro_buffer_items",
            "currently buffered items awaiting resolution or emission",
            **labels).track_max()
        self._bytes_gauge = metrics.gauge(
            "repro_buffer_bytes",
            "estimated bytes held by buffered items",
            **labels).track_max()
        self._instances_gauge = metrics.gauge(
            "repro_live_predicate_instances",
            "live predicate instances (depth-vector cardinality of the "
            "current state set)",
            **labels).track_max()
        self._delay_hist = metrics.histogram(
            "repro_emission_delay_events",
            "stream events between an item's enqueue and its emission",
            buckets=DELAY_BUCKETS, **labels)
        self._bpdt_gauges: Dict[Tuple[int, int], object] = {}
        self.entries: Dict[int, _Entry] = {}
        self.bpdt_items: Dict[Tuple[int, int], int] = {}
        self.items = 0
        self.items_high_water = 0
        self.bytes = 0
        self.bytes_high_water = 0
        self.instances = 0
        self.instances_high_water = 0
        self.enqueued = 0
        self.emitted = 0
        self.cleared = 0
        self.uploads = 0
        self.delay_sum = 0
        self.delay_max = 0
        self.finishes = 0
        self._last_sent_seq: Optional[int] = None
        self._sent_seqs: set = set()
        # Items enqueued this clock tick with zero unresolved governing
        # predicates; the auditor checks them when the clock advances.
        self._zero_governed: List[int] = []

    # -- queue hooks -----------------------------------------------------

    def on_enqueue(self, item, governed: int, depth_vector: tuple) -> None:
        nbytes = (ITEM_OVERHEAD_BYTES
                  + (len(item.value) if item.value is not None else 0)
                  + packed_size(depth_vector))
        self.entries[item.seq] = _Entry(nbytes, self.accountant.clock,
                                        governed, item.owner)
        self.enqueued += 1
        self.items += 1
        if self.items > self.items_high_water:
            self.items_high_water = self.items
        self.bytes += nbytes
        if self.bytes > self.bytes_high_water:
            self.bytes_high_water = self.bytes
        self._items_gauge.inc()
        self._bytes_gauge.inc(nbytes)
        self._bpdt_delta(item.owner, 1)
        if self.accountant.auditor is not None and governed == 0:
            if not self._zero_governed:
                self.accountant._tick_watch.append(self)
            self._zero_governed.append(item.seq)

    def on_value_final(self, item) -> None:
        entry = self.entries.get(item.seq)
        if entry is None or item.value is None:
            return
        delta = len(item.value)
        entry.bytes += delta
        self.bytes += delta
        if self.bytes > self.bytes_high_water:
            self.bytes_high_water = self.bytes
        self._bytes_gauge.inc(delta)

    def on_upload(self, item, old_owner: Tuple[int, int]) -> None:
        entry = self.entries.get(item.seq)
        auditor = self.accountant.auditor
        if entry is None:
            if auditor is not None:
                auditor.violation(
                    "upload-unknown-item", self.label, item.seq,
                    self.accountant.clock,
                    "upload for an item that is not buffered")
            return
        if auditor is not None:
            if entry.flushed:
                auditor.violation(
                    "upload-after-resolution", self.label, item.seq,
                    self.accountant.clock,
                    "ownership hop on an already output-marked item")
            if item.owner[0] > old_owner[0]:
                auditor.violation(
                    "upload-downward", self.label, item.seq,
                    self.accountant.clock,
                    "upload moved bpdt(%d,%d) -> bpdt(%d,%d), away from "
                    "the root" % (old_owner + item.owner))
        self.uploads += 1
        self._bpdt_delta(old_owner, -1)
        self._bpdt_delta(item.owner, 1)
        entry.owner = item.owner

    def on_flush(self, item) -> None:
        entry = self.entries.get(item.seq)
        if entry is None:
            if self.accountant.auditor is not None:
                auditor = self.accountant.auditor
                auditor.violation(
                    "flush-unknown-item", self.label, item.seq,
                    self.accountant.clock,
                    "flush for an item that is not buffered")
            return
        entry.flushed = True

    def on_clear(self, item) -> None:
        entry = self.entries.pop(item.seq, None)
        auditor = self.accountant.auditor
        if entry is None:
            if auditor is not None:
                auditor.violation(
                    "clear-unknown-item", self.label, item.seq,
                    self.accountant.clock,
                    "clear for an item that is not buffered")
            return
        if auditor is not None and entry.flushed:
            auditor.violation(
                "clear-after-flush", self.label, item.seq,
                self.accountant.clock,
                "an output-marked item stays in the result even when "
                "other embeddings fail (Example 2); it must not be "
                "cleared")
        self.cleared += 1
        self._drop(item.seq, entry)

    def on_send(self, item) -> None:
        entry = self.entries.pop(item.seq, None)
        auditor = self.accountant.auditor
        clock = self.accountant.clock
        if entry is None:
            if auditor is not None:
                auditor.violation(
                    "send-unknown-item", self.label, item.seq, clock,
                    "emission of an item that is not buffered")
            return
        if auditor is not None:
            if not entry.flushed:
                auditor.violation(
                    "send-without-flush", self.label, item.seq, clock,
                    "item reached the output without a flush: some "
                    "governing predicate never resolved true")
            if item.seq in self._sent_seqs:
                auditor.violation(
                    "duplicate-send", self.label, item.seq, clock,
                    "item emitted more than once")
            elif (self._last_sent_seq is not None
                    and item.seq < self._last_sent_seq):
                auditor.violation(
                    "out-of-order-send", self.label, item.seq, clock,
                    "item #%d emitted after item #%d: document order "
                    "broken" % (item.seq, self._last_sent_seq))
            self._sent_seqs.add(item.seq)
        if self._last_sent_seq is None or item.seq > self._last_sent_seq:
            self._last_sent_seq = item.seq
        delay = clock - entry.enq_clock
        self.emitted += 1
        self.delay_sum += delay
        if delay > self.delay_max:
            self.delay_max = delay
        self._delay_hist.observe(delay)
        self._drop(item.seq, entry)

    def on_finish(self, queue) -> None:
        self.finishes += 1
        auditor = self.accountant.auditor
        if auditor is not None:
            for seq, entry in sorted(self.entries.items()):
                auditor.violation(
                    "retained-at-finish", self.label, seq,
                    self.accountant.clock,
                    "item still buffered at end of stream (flushed=%s, "
                    "governed=%d at enqueue): every predicate is "
                    "resolved, the queue should have drained"
                    % (entry.flushed, entry.governed))
        # Drop whatever a (buggy) run left behind so the next run on the
        # same account starts from an empty ledger.
        for seq, entry in list(self.entries.items()):
            self._drop(seq, entry)
        self.entries.clear()
        self._zero_governed = []
        self._last_sent_seq = None
        self._sent_seqs = set()

    # -- runtime hooks ---------------------------------------------------

    def set_instances(self, count: int) -> None:
        """Live predicate-instance population (depth-vector cardinality)."""
        self.instances = count
        if count > self.instances_high_water:
            self.instances_high_water = count
        self._instances_gauge.set(count)

    # -- auditor ---------------------------------------------------------

    def check_tick(self) -> None:
        """Necessary-buffering check, run when the event clock advances.

        An item enqueued with zero unresolved governing predicates must
        be output-marked before the *next* stream event (both engines
        flush it in the same call stack); one that is not was buffered
        without need — exactly what the paper claims never happens.
        """
        pending, self._zero_governed = self._zero_governed, []
        auditor = self.accountant.auditor
        if auditor is None:
            return
        for seq in pending:
            entry = self.entries.get(seq)
            if entry is not None and not entry.flushed:
                auditor.violation(
                    "buffered-without-predicate", self.label, seq,
                    self.accountant.clock,
                    "item buffered past its enqueue event although no "
                    "governing predicate was unresolved")

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "engine": self.engine,
            "query": self.label,
            "items": self.items,
            "items_high_water": self.items_high_water,
            "bytes": self.bytes,
            "bytes_high_water": self.bytes_high_water,
            "live_instances": self.instances,
            "instances_high_water": self.instances_high_water,
            "enqueued": self.enqueued,
            "emitted": self.emitted,
            "cleared": self.cleared,
            "uploads": self.uploads,
            "delay": {
                "count": self.emitted,
                "sum": self.delay_sum,
                "max": self.delay_max,
                "mean": (self.delay_sum / self.emitted
                         if self.emitted else 0.0),
            },
            "bpdt_items": {"(%d,%d)" % owner: count
                           for owner, count in sorted(self.bpdt_items.items())
                           if count},
        }

    # -- internals -------------------------------------------------------

    def _drop(self, seq: int, entry: _Entry) -> None:
        self.items -= 1
        self.bytes -= entry.bytes
        self._items_gauge.dec()
        self._bytes_gauge.dec(entry.bytes)
        self._bpdt_delta(entry.owner, -1)

    def _bpdt_delta(self, owner: Tuple[int, int], delta: int) -> None:
        self.bpdt_items[owner] = self.bpdt_items.get(owner, 0) + delta
        gauge = self._bpdt_gauges.get(owner)
        if gauge is None:
            gauge = self.accountant.metrics.gauge(
                "repro_bpdt_buffer_items",
                "currently buffered items per owning BPDT buffer",
                engine=self.engine, query=self.label,
                bpdt="(%d,%d)" % owner).track_max()
            self._bpdt_gauges[owner] = gauge
        gauge.inc(delta)

    def __repr__(self):
        return "<QueryAccount %s %r items=%d hw=%d>" % (
            self.engine, self.label, self.items, self.items_high_water)


class ResourceAccountant:
    """Bundle-level registry of :class:`QueryAccount` ledgers.

    One accountant per :class:`~repro.obs.Observability` bundle; the
    engines advance its event-count clock (via the bundle's event hook)
    and request one account per (engine, query) at run start.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 audit: bool = False):
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.auditor: Optional[BufferAuditor] = (
            BufferAuditor(self.metrics) if audit else None)
        self.clock = 0
        self.accounts: Dict[Tuple[str, str], QueryAccount] = {}
        self._tick_watch: List[QueryAccount] = []
        # Guards account registration and snapshots (the per-event clock
        # stays lock-free).  ``xsq top`` and the HTTP endpoint read
        # whole snapshots under this lock so rows never interleave with
        # a run registering accounts mid-refresh.
        self._lock = threading.RLock()

    def enable_audit(self) -> BufferAuditor:
        if self.auditor is None:
            self.auditor = BufferAuditor(self.metrics)
        return self.auditor

    def on_event(self, event=None) -> None:
        """Advance the event-count clock (called once per stream event)."""
        if self._tick_watch:
            watch, self._tick_watch = self._tick_watch, []
            for account in watch:
                account.check_tick()
        self.clock += 1

    def account(self, label: str, engine: str = "xsq") -> QueryAccount:
        key = (engine, label)
        with self._lock:
            account = self.accounts.get(key)
            if account is None:
                account = QueryAccount(self, engine, label)
                self.accounts[key] = account
        return account

    @property
    def violations(self) -> List[AuditViolation]:
        return self.auditor.violations if self.auditor is not None else []

    def snapshot(self) -> dict:
        with self._lock:
            accounts = list(self.accounts.values())
        return {
            "clock": self.clock,
            "accounts": [account.snapshot() for account in accounts],
            "audit": {
                "enabled": self.auditor is not None,
                "violations": len(self.violations),
            },
        }

    def __repr__(self):
        return "<ResourceAccountant clock=%d accounts=%d audit=%s>" % (
            self.clock, len(self.accounts), self.auditor is not None)


def format_top(snapshot: dict, bytes_column: bool = True) -> str:
    """Render an accountant snapshot as the ``xsq top`` table."""
    header = "events=%d  queries=%d" % (snapshot.get("clock", 0),
                                        len(snapshot.get("accounts", ())))
    audit = snapshot.get("audit", {})
    if audit.get("enabled"):
        header += "  audit=%s" % ("OK" if not audit.get("violations")
                                  else "%d VIOLATIONS" % audit["violations"])
    columns = ["QUERY", "ENGINE", "ITEMS", "HIWAT"]
    if bytes_column:
        columns += ["BYTES", "BYTES-HW"]
    columns += ["INST", "EMIT", "DELAY-AVG", "DELAY-MAX"]
    rows = [columns]
    for account in snapshot.get("accounts", ()):
        row = [_clip(account["query"], 44), account["engine"],
               str(account["items"]), str(account["items_high_water"])]
        if bytes_column:
            row += [_human_bytes(account["bytes"]),
                    _human_bytes(account["bytes_high_water"])]
        row += [str(account["live_instances"]),
                str(account["emitted"]),
                "%.1f" % account["delay"]["mean"],
                str(account["delay"]["max"])]
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
    lines = [header]
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
    delivery = snapshot.get("delivery")
    if delivery:
        lines.append("")
        lines.append(format_delivery(delivery))
    return "\n".join(lines)


def format_delivery(delivery: dict) -> str:
    """Render a delivery-latency snapshot as the ``xsq top`` section.

    ``delivery`` is :meth:`repro.obs.latency.DeliveryTracker.snapshot`:
    per-subscription count and p50/p99/max seconds over the recent
    reservoir window.
    """
    header = "delivery: results=%d  p50=%s  p99=%s  max=%s" % (
        delivery.get("completed", 0),
        _human_seconds(delivery.get("p50_seconds", 0.0)),
        _human_seconds(delivery.get("p99_seconds", 0.0)),
        _human_seconds(delivery.get("max_seconds", 0.0)))
    rows = [["SUB", "TENANT", "COUNT", "P50", "P99", "MAX"]]
    for sid, entry in sorted(delivery.get("subscriptions", {}).items()):
        rows.append([sid, str(entry.get("tenant") or "-"),
                     str(entry.get("count", 0)),
                     _human_seconds(entry.get("p50_seconds", 0.0)),
                     _human_seconds(entry.get("p99_seconds", 0.0)),
                     _human_seconds(entry.get("max_seconds", 0.0))])
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [header]
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _human_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.1fms" % (seconds * 1e3)
    return "%.0fus" % (seconds * 1e6)


def _clip(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[:limit - 1] + "…"


def _human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024 or unit == "GB":
            return ("%d%s" % (count, unit) if unit == "B"
                    else "%.1f%s" % (count, unit))
        count /= 1024.0
    return "%dB" % count
