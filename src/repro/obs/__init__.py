"""Unified observability: spans, metrics, and execution tracing.

This package is the measurement substrate for every performance claim
the reproduction makes.  It has three pillars, bundled by the
:class:`Observability` facade that engines and the bench harness accept:

* :mod:`repro.obs.spans` — nested phase timings (tokenize -> parse ->
  HPDT compile -> stream -> per-event dispatch) with monotonic clocks;
* :mod:`repro.obs.metrics` — named counters, gauges, and fixed-bucket
  histograms with a pluggable sink protocol and Prometheus-style text
  exposition;
* :mod:`repro.obs.events` — :class:`EventTrace`, the replayable SAX
  event -> transition -> buffer-op record behind ``repro trace``.

Everything is zero-dependency and, when not attached, zero-cost: the
engines keep their un-instrumented hot loops when ``obs is None``, and
the :data:`~repro.obs.spans.NULL_TRACER` / :data:`~repro.obs.metrics.NULL_METRICS`
singletons make partially-disabled bundles safe to call into.

Typical use::

    from repro import XSQEngine
    from repro.obs import Observability

    obs = Observability()
    engine = XSQEngine("//pub[year>2000]//name/text()", obs=obs)
    results = engine.run("catalog.xml")
    print(obs.flame())                    # phase timings
    print(obs.metrics_text())             # Prometheus exposition
    print(obs.events.explain())           # per-item buffer journeys
    obs.write_jsonl("run.jsonl")          # spans + buffer ops + metrics
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Optional, Union

from repro.obs.accounting import (
    AuditViolation,
    BufferAuditor,
    DELAY_BUCKETS,
    QueryAccount,
    ResourceAccountant,
    format_delivery,
    format_top,
)
from repro.obs.events import BufferOp, EventTrace
from repro.obs.latency import (
    DeliveryTracker,
    LatencyRecorder,
    ResultTiming,
    percentile,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DELIVERY_BUCKETS,
    FANOUT_BUCKETS,
    LATENCY_BUCKETS,
    SMALL_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlMetricsSink,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.profile import ProfileReport, Profiler, profile_query
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import NULL_TRACER, Span, Tracer

#: Canonical buffer-operation names, mapped from ``RunStats`` fields.
#: ``upload`` counts are populated only when an event trace is attached:
#: the matcher skips the ownership arithmetic otherwise (it affects no
#: output, only observability — see ``Chain.on_instance_true``).
_STATS_OPS = (("enqueued", "enqueue"), ("cleared", "clear"),
              ("flushed", "flush"), ("uploaded", "upload"))


class Observability:
    """One bundle of tracer + metrics + event trace.

    Construct with the pillars you want (all on by default except
    per-event dispatch timing, which multiplies per-event work and is
    only worth it when hunting a hot spot)::

        obs = Observability()                        # spans+metrics+events
        obs = Observability(events=False)            # timings/metrics only
        obs = Observability(per_event_timing=True)   # + dispatch histogram
        obs = Observability(accounting=True)         # + live buffer ledger
        obs = Observability(audit=True)              # + discipline auditor
        obs = Observability(profile=True)            # + phase profiler
        obs = Observability(recorder=True)           # + flight recorder
        obs = Observability(serve=9099)              # + HTTP /metrics

    Engines accept ``obs=`` at construction; ``None`` (the default)
    keeps their hot paths exactly as un-instrumented as before.
    ``accounting`` attaches a :class:`~repro.obs.accounting.ResourceAccountant`
    (live occupancy/byte/delay ledgers per query); ``audit`` implies
    accounting and adds the :class:`~repro.obs.accounting.BufferAuditor`
    that checks the paper's necessary-buffering discipline online.
    """

    enabled = True

    def __init__(self, spans: bool = True, metrics: bool = True,
                 events: bool = True, per_event_timing: bool = False,
                 accounting: bool = False, audit: bool = False,
                 profile=False, recorder=False,
                 serve: Optional[int] = None):
        self.tracer: Tracer = Tracer() if spans else NULL_TRACER
        self.metrics: MetricsRegistry = (MetricsRegistry() if metrics
                                         else NULL_METRICS)
        self.events: Optional[EventTrace] = EventTrace() if events else None
        self.per_event_timing = per_event_timing
        self.accounting: Optional[ResourceAccountant] = (
            ResourceAccountant(self.metrics, audit=audit)
            if accounting or audit else None)
        # ``profile`` accepts True (default sampling) or a configured
        # :class:`~repro.obs.profile.Profiler`; ``None`` keeps engines'
        # un-profiled pumps.
        if profile is True:
            self.profiler: Optional[Profiler] = Profiler()
        elif profile:
            self.profiler = profile
        else:
            self.profiler = None
        # ``recorder`` accepts True (default capacity), an int capacity,
        # or a ready :class:`~repro.obs.recorder.FlightRecorder`;
        # ``False`` keeps the bundle recorder-free (the default — no
        # ring, no span hook, nothing on the hot path).
        if recorder is True:
            self.flight: Optional[FlightRecorder] = FlightRecorder()
        elif isinstance(recorder, int) and recorder:
            self.flight = FlightRecorder(capacity=recorder)
        elif recorder:
            self.flight = recorder
        else:
            self.flight = None
        if self.flight is not None and self.tracer.enabled:
            self.tracer.on_finish = self.flight.record_span
        #: Lazily attached :class:`~repro.obs.latency.DeliveryTracker`
        #: (see :meth:`enable_delivery`).
        self.delivery: Optional[DeliveryTracker] = None
        self.server = None
        if serve is not None:
            self.serve(serve)
        # High-water mark into ``events.records`` already aggregated into
        # per-BPDT metrics, so several runs on one bundle don't double
        # count.
        self._aggregated_ops = 0

    @classmethod
    def disabled(cls) -> "Observability":
        """A bundle that observes nothing (all pillars are no-ops)."""
        obs = cls(spans=False, metrics=False, events=False)
        obs.enabled = False
        return obs

    # -- convenience delegates -------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, help: str = "", **labels):
        return self.metrics.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels):
        return self.metrics.gauge(name, help, **labels)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS,
                  **labels):
        return self.metrics.histogram(name, help, buckets=buckets, **labels)

    # -- engine hooks -----------------------------------------------------

    def event_hook(self):
        """Per-event callable combining the trace and the accountant.

        Engines call the returned hook once per stream event (it feeds
        the :class:`EventTrace` and advances the accountant's
        event-count clock); ``None`` when neither pillar needs events.
        """
        trace_hook = self.events.on_event if self.events is not None else None
        account = self.accounting
        if account is None:
            return trace_hook
        acct_hook = account.on_event
        if trace_hook is None:
            return acct_hook

        def hook(event):
            trace_hook(event)
            acct_hook(event)

        return hook

    def serve(self, port: int = 0, host: str = "127.0.0.1"):
        """Start (or return) the HTTP metrics endpoint for this bundle.

        Exposes ``/metrics`` (Prometheus text), ``/healthz`` and
        ``/snapshot`` on a daemon thread; ``port=0`` binds an ephemeral
        port (read it back from ``obs.server.port``).
        """
        if self.server is None:
            from repro.obs.serve import MetricsServer
            self.server = MetricsServer(self, port=port, host=host)
            self.server.start()
        return self.server

    def enable_delivery(self) -> DeliveryTracker:
        """Attach (or return) the end-to-end delivery latency tracker.

        The tracker observes ``repro_serve_delivery_seconds`` /
        ``repro_serve_stage_seconds`` on this bundle's registry (when
        metrics are enabled) and keeps bounded reservoirs for exact
        percentiles in :meth:`snapshot` and ``stats`` responses.
        """
        if self.delivery is None:
            self.delivery = DeliveryTracker(
                self.metrics if self.metrics.enabled else None)
        return self.delivery

    def enable_audit(self) -> BufferAuditor:
        """Attach (or return) the buffer auditor, creating the
        accountant if accounting was off."""
        if self.accounting is None:
            self.accounting = ResourceAccountant(self.metrics, audit=True)
        return self.accounting.enable_audit()

    @property
    def auditor(self) -> Optional[BufferAuditor]:
        return self.accounting.auditor if self.accounting is not None \
            else None

    @property
    def audit_violations(self) -> List[AuditViolation]:
        """Violations found so far (empty when the auditor is off)."""
        return self.accounting.violations if self.accounting is not None \
            else []

    def snapshot(self) -> dict:
        """Point-in-time resource snapshot (the ``xsq top`` payload).

        Requires ``accounting=True``; returns ``{"accounting": False}``
        otherwise so callers can branch without try/except.
        """
        if self.accounting is None:
            snap = {"accounting": False}
        else:
            snap = self.accounting.snapshot()
            snap["accounting"] = True
        if self.delivery is not None:
            snap["delivery"] = self.delivery.snapshot()
        return snap

    def record_run(self, engine: str, stats, seconds: float = 0.0) -> None:
        """Fold one run's ``RunStats`` into the metrics registry."""
        metrics = self.metrics
        metrics.counter("repro_runs_total",
                        "engine runs recorded", engine=engine).inc()
        metrics.counter("repro_run_events_total",
                        "stream events processed", engine=engine
                        ).inc(stats.events)
        metrics.counter("repro_results_total",
                        "result items emitted", engine=engine
                        ).inc(stats.emitted)
        stats_dict = stats.as_dict()
        for field, op in _STATS_OPS:
            metrics.counter(
                "repro_buffer_ops_total",
                "buffer operations (the paper's enqueue/clear/flush/upload)",
                engine=engine, op=op).inc(stats_dict.get(field, 0))
        metrics.gauge("repro_peak_buffered_items",
                      "max simultaneously buffered undetermined items",
                      engine=engine).set_max(stats.peak_buffered_items)
        metrics.gauge("repro_peak_predicate_instances",
                      "max simultaneously live predicate instances "
                      "(depth-vector population)",
                      engine=engine).set_max(stats.peak_instances)
        metrics.histogram("repro_peak_occupancy_items",
                          "per-run peak buffer occupancy",
                          engine=engine).observe(stats.peak_buffered_items)
        if seconds > 0:
            metrics.gauge("repro_events_per_second",
                          "stream events per second of query phase",
                          engine=engine).set(stats.events / seconds)
        self._aggregate_events(engine)

    def _aggregate_events(self, engine: str) -> None:
        """Per-BPDT op counters and depth-vector sizes from the trace."""
        trace = self.events
        if trace is None:
            return
        records = trace.records
        metrics = self.metrics
        dv_histogram = metrics.histogram(
            "repro_depth_vector_len",
            "depth-vector length at enqueue (embedding depth)",
            buckets=SMALL_COUNT_BUCKETS, engine=engine)
        for record in records[self._aggregated_ops:]:
            metrics.counter(
                "repro_bpdt_ops_total",
                "buffer operations per owning BPDT buffer",
                engine=engine, bpdt="(%d,%d)" % record.bpdt,
                op=record.op).inc()
            if record.op == "enqueue":
                dv_histogram.observe(len(record.depth_vector))
        self._aggregated_ops = len(records)

    # -- export ----------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """Spans, buffer ops, audit violations, accounting, metrics."""
        for line in self.tracer.jsonl_lines():
            yield line
        if self.events is not None:
            for line in self.events.jsonl_lines():
                yield line
        if self.accounting is not None:
            for violation in self.accounting.violations:
                yield json.dumps(violation.as_dict(), sort_keys=True)
            yield json.dumps({"type": "accounting",
                              "snapshot": self.accounting.snapshot()},
                             sort_keys=True)
        if self.profiler is not None and self.profiler.events:
            yield json.dumps(self.profiler.report().as_dict(),
                             sort_keys=True)
        if self.delivery is not None and self.delivery.completed:
            yield json.dumps({"type": "delivery",
                              "snapshot": self.delivery.snapshot()},
                             sort_keys=True)
        if self.flight is not None and len(self.flight):
            yield json.dumps({"type": "flight",
                              "snapshot": self.flight.snapshot()},
                             sort_keys=True)
        if self.metrics.enabled:
            yield json.dumps({"type": "metrics",
                              "snapshot": self.metrics.as_dict()},
                             sort_keys=True)

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the JSONL export to a path or stream; returns line count."""
        lines: List[str] = list(self.jsonl_lines())
        if hasattr(target, "write"):
            for line in lines:
                target.write(line + "\n")
        else:
            with open(target, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
        return len(lines)

    def metrics_text(self) -> str:
        return self.metrics.render_prometheus()

    def flame(self) -> str:
        return self.tracer.flame()

    def __repr__(self):
        return ("<Observability spans=%d metrics=%d events=%s>"
                % (len(self.tracer.finished),
                   len(self.metrics.metrics()),
                   len(self.events.records) if self.events is not None
                   else "off"))


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlMetricsSink",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "DELIVERY_BUCKETS",
    "FANOUT_BUCKETS",
    "SMALL_COUNT_BUCKETS",
    "DeliveryTracker",
    "LatencyRecorder",
    "ResultTiming",
    "percentile",
    "FlightRecorder",
    "Profiler",
    "ProfileReport",
    "profile_query",
    "EventTrace",
    "BufferOp",
    "ResourceAccountant",
    "QueryAccount",
    "BufferAuditor",
    "AuditViolation",
    "DELAY_BUCKETS",
    "format_top",
    "format_delivery",
]
