"""Structured tracing: nested phase timings as context-manager spans.

The paper's throughput decomposition (Figure 18) splits every run into
compile / preprocess / query phases; the engines themselves decompose
further (tokenize -> parse -> HPDT compile -> stream).  A
:class:`Tracer` records those phases as a tree of :class:`Span` objects
timed with a monotonic clock, exportable two ways:

* :meth:`Tracer.jsonl_lines` — one JSON object per finished span, in
  completion order, for machine consumption (the ``repro trace --jsonl``
  output);
* :meth:`Tracer.flame` — an indented flame-style text summary with
  durations and percent-of-parent bars, for humans.

Disabled tracing costs one attribute load and a truth test:
:data:`NULL_TRACER` hands out a shared no-op context manager, so code
can be written against the tracer interface unconditionally.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterator, List, Optional


class Span:
    """One timed phase.  Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "start", "end", "parent", "children",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict,
                 parent: Optional["Span"]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: List["Span"] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def depth(self) -> int:
        depth, current = 0, self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._exit(self)

    def as_dict(self) -> dict:
        record = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent.name if self.parent is not None else None,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def to_payload(self) -> dict:
        """Self-contained JSON-safe tree (no parent back-refs).

        The wire format :meth:`Tracer.graft` reconstructs on the other
        side of a process boundary: ``TaskPool`` workers ship their span
        trees through the result queue as these payloads.
        """
        node: dict = {"name": self.name, "start": self.start,
                      "end": self.end}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_payload()
                                for child in self.children]
        return node

    def __repr__(self):
        return "<Span %s %.6fs>" % (self.name, self.duration)


class Tracer:
    """Records a tree of spans with a monotonic clock.

    One tracer is one timeline; engines share the tracer handed to them
    through an :class:`repro.obs.Observability` bundle, so engine-internal
    phases nest under the harness's phases automatically.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: List[Span] = []
        #: Root spans, in start order.
        self.roots: List[Span] = []
        #: Every finished span, in completion order.
        self.finished: List[Span] = []
        #: Optional ``hook(span)`` called as each span finishes (the
        #: flight recorder subscribes here).
        self.on_finish: Optional[Callable[[Span], None]] = None

    def span(self, name: str, **attrs) -> Span:
        """Create a span; timing starts when the ``with`` block enters."""
        parent = self._stack[-1] if self._stack else None
        return Span(self, name, attrs, parent)

    # -- context-manager plumbing ---------------------------------------

    def _enter(self, span: Span) -> None:
        # Re-resolve the parent at enter time: a span created eagerly may
        # be entered after its sibling closed.
        span.parent = self._stack[-1] if self._stack else None
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.start = self._clock()

    def _exit(self, span: Span) -> None:
        span.end = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.finished.append(span)
        if self.on_finish is not None:
            self.on_finish(span)

    # -- cross-process stitching ----------------------------------------

    def graft(self, payload: dict, offset: float = 0.0) -> Span:
        """Attach a :meth:`Span.to_payload` tree to this timeline.

        The tree nests under the currently open span (or becomes a new
        root), with every timestamp shifted by ``offset`` — the caller's
        clock-domain correction.  ``perf_counter`` epochs differ per
        process, so the offset for a worker tree is computed from paired
        (perf, wall) samples: ``(w_wall - w_perf) - (p_wall - p_perf)``
        maps worker perf time onto the parent's perf timeline, assuming
        the wall clocks agree.  Grafted spans land in :attr:`finished`
        in post-order (children before parents), mirroring live
        completion order.
        """
        parent = self._stack[-1] if self._stack else None
        span = self._graft_node(payload, parent, offset)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def _graft_node(self, payload: dict, parent: Optional[Span],
                    offset: float) -> Span:
        span = Span(self, payload.get("name", "span"),
                    dict(payload.get("attrs") or {}), parent)
        start = payload.get("start")
        end = payload.get("end")
        span.start = None if start is None else start + offset
        span.end = None if end is None else end + offset
        for child_payload in payload.get("children", ()):
            span.children.append(
                self._graft_node(child_payload, span, offset))
        self.finished.append(span)
        return span

    # -- export ----------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """One JSON object per finished span, completion order."""
        for span in self.finished:
            yield json.dumps(span.as_dict(), sort_keys=True)

    def flame(self) -> str:
        """Indented text summary: duration, share of parent, bar."""
        lines: List[str] = []

        def render(span: Span, indent: int, parent_duration: float) -> None:
            share = (span.duration / parent_duration
                     if parent_duration > 0 else 1.0)
            bar = "#" * max(1, int(round(share * 20)))
            label = "%s%s" % ("  " * indent, span.name)
            lines.append("%-32s %9.3fms %5.1f%% %s"
                         % (label, span.duration * 1e3, share * 100, bar))
            for child in span.children:
                render(child, indent + 1, span.duration or 1e-12)

        total = sum(span.duration for span in self.roots)
        for root in self.roots:
            render(root, 0, total or root.duration or 1e-12)
        return "\n".join(lines)

    def __repr__(self):
        return "<Tracer %d spans>" % len(self.finished)


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's only allocation."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}
    start = end = None
    duration = 0.0
    depth = 0
    parent = None
    children: list = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def as_dict(self) -> dict:
        return {}


class _NullTracer(Tracer):
    """Disabled tracing: every ``span()`` is the same inert object."""

    enabled = False

    def __init__(self):
        super().__init__()
        self._span = _NullSpan()

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return self._span


#: Module-level no-op singleton; ``Observability.disabled()`` uses it.
NULL_TRACER = _NullTracer()
