"""End-to-end delivery latency: per-result provenance timestamps.

The paper's promise is results *as the data streams by*; PR 3's
emission-delay histograms measure only the engine-internal segment (in
events, not seconds).  This module measures the full path a result
travels through the push/serve pipeline, in seconds on the same
monotonic clock discipline as :mod:`repro.obs.spans`:

    feed-call entry -> event batch parsed -> result emitted ->
    broker dispatch -> outbox enqueue -> socket write

Each result carries one :class:`ResultTiming` record.  Stages stamp it
as the result passes: push handles stamp entry/emit, the broker stream
stamps feed/batch, the server stamps dispatch/enqueue/write.  Completed
timings fold into a :class:`DeliveryTracker` — per-subscription
``repro_serve_delivery_seconds`` and per-stage
``repro_serve_stage_seconds`` histograms on the shared metrics
registry, plus bounded in-memory reservoirs for exact p50/p99 in
``stats`` responses, ``xsq top`` and ``BENCH_latency.json``.

The disabled path is free by construction: handles carry
``latency = None`` and every stamp site is one attribute load plus a
``None`` test, exactly the ``obs is None`` discipline the engines use
(priced in ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DELIVERY_BUCKETS, LATENCY_BUCKETS

#: Pipeline stage names, in path order.  Each is the delta between two
#: adjacent timestamps on a :class:`ResultTiming`.
STAGES = ("parse", "match", "dispatch", "enqueue", "write")

#: Per-subscription reservoir size for exact percentile estimates.
DEFAULT_RESERVOIR = 512


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of an unsorted sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(math.ceil(q * len(ordered))) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class ResultTiming:
    """Provenance record for one delivered result.

    Timestamps are ``time.perf_counter`` readings taken in the serving
    process; a ``None`` field means the result never passed that stage
    (e.g. broker-only use without a server leaves dispatch onward
    unset).
    """

    __slots__ = ("sub", "tenant", "feed", "batch", "emit", "dispatch",
                 "enqueue", "write")

    def __init__(self, feed: Optional[float] = None,
                 batch: Optional[float] = None,
                 emit: Optional[float] = None):
        self.sub: Optional[str] = None
        self.tenant: Optional[str] = None
        self.feed = feed
        self.batch = batch
        self.emit = emit
        self.dispatch: Optional[float] = None
        self.enqueue: Optional[float] = None
        self.write: Optional[float] = None

    @property
    def total(self) -> Optional[float]:
        """Feed-entry to socket-write seconds; ``None`` if incomplete."""
        if self.feed is None or self.write is None:
            return None
        return self.write - self.feed

    def stage_deltas(self) -> List[Tuple[str, float]]:
        """(stage, seconds) pairs for every adjacent stamped pair."""
        path = (("parse", self.feed, self.batch),
                ("match", self.batch, self.emit),
                ("dispatch", self.emit, self.dispatch),
                ("enqueue", self.dispatch, self.enqueue),
                ("write", self.enqueue, self.write))
        return [(stage, later - earlier)
                for stage, earlier, later in path
                if earlier is not None and later is not None]

    def as_dict(self) -> dict:
        record = {"sub": self.sub, "tenant": self.tenant}
        for field in ("feed", "batch", "emit", "dispatch", "enqueue",
                      "write"):
            record[field] = getattr(self, field)
        return record

    def __repr__(self):
        total = self.total
        return "<ResultTiming sub=%s %s>" % (
            self.sub, "open" if total is None else "%.6fs" % total)


class LatencyRecorder:
    """Per-stream stamping frontend for one feed/emit cycle.

    A :class:`~repro.serve.broker.BrokerStream` owns one recorder and
    attaches it to its push handle's ``latency`` slot.  The stream
    stamps ``start_feed``/``mark_batch`` at the transport boundary; the
    handle stamps ``handle_entry`` and ``emitted`` around its drain, so
    a recorder attached directly to a bare handle still measures the
    entry-to-emit segment.
    """

    __slots__ = ("tracker", "clock", "pending", "_feed", "_batch")

    def __init__(self, tracker: "DeliveryTracker"):
        self.tracker = tracker
        self.clock = tracker.clock
        #: Timings emitted but not yet claimed via :meth:`take`.
        self.pending: List[ResultTiming] = []
        self._feed: Optional[float] = None
        self._batch: Optional[float] = None

    def start_feed(self) -> None:
        """Stamp feed-call entry (transport boundary, before parsing)."""
        self._feed = self.clock()
        self._batch = None

    def mark_batch(self) -> None:
        """Stamp the event batch boundary (bytes parsed into events)."""
        self._batch = self.clock()

    def handle_entry(self) -> None:
        """Stamp feed entry if the transport layer has not already."""
        if self._feed is None:
            self._feed = self.clock()

    def emitted(self, count: int) -> None:
        """Record ``count`` results leaving the engine this cycle.

        All results of one drain share the feed/batch stamps and one
        emit stamp — emission is a batch boundary, not a per-result
        event — then the cycle resets for the next feed call.
        """
        if count:
            now = self.clock()
            feed, batch = self._feed, self._batch
            self.pending.extend(
                ResultTiming(feed, batch, now) for _ in range(count))
        self._feed = None
        self._batch = None

    def take(self) -> List[ResultTiming]:
        """Claim pending timings (1:1, in emission order)."""
        out, self.pending = self.pending, []
        return out


class DeliveryTracker:
    """Aggregates completed :class:`ResultTiming` records.

    Thread-safe: the asyncio writer tasks complete timings while the
    metrics HTTP thread snapshots.  Per-subscription reservoirs are
    bounded deques, so a long-running server keeps recent-window
    percentiles without unbounded growth.
    """

    def __init__(self, metrics=None, reservoir: int = DEFAULT_RESERVOIR,
                 clock=time.perf_counter):
        self.metrics = metrics
        self.clock = clock
        self.reservoir = reservoir
        self.completed = 0
        self._lock = threading.Lock()
        self._subs: Dict[str, dict] = {}

    def recorder(self) -> LatencyRecorder:
        """A stamping frontend bound to this tracker's clock."""
        return LatencyRecorder(self)

    def complete(self, timing: ResultTiming) -> None:
        """Fold one written-to-socket result into histograms/reservoirs."""
        total = timing.total
        if total is None:
            return
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram(
                "repro_serve_delivery_seconds",
                "end-to-end result delivery latency: feed-call entry to "
                "socket write",
                buckets=DELIVERY_BUCKETS,
                tenant=timing.tenant or "", sub=timing.sub or "",
            ).observe(total)
            for stage, delta in timing.stage_deltas():
                metrics.histogram(
                    "repro_serve_stage_seconds",
                    "per-stage delivery pipeline latency",
                    buckets=LATENCY_BUCKETS, stage=stage,
                ).observe(delta)
        with self._lock:
            entry = self._subs.get(timing.sub)
            if entry is None:
                entry = {"tenant": timing.tenant, "count": 0,
                         "latencies": deque(maxlen=self.reservoir)}
                self._subs[timing.sub] = entry
            entry["count"] += 1
            entry["latencies"].append(total)
            self.completed += 1

    def latencies(self, sub: Optional[str] = None) -> List[float]:
        """Reservoir samples for one subscription, or all pooled."""
        with self._lock:
            if sub is not None:
                entry = self._subs.get(sub)
                return list(entry["latencies"]) if entry else []
            return [value for entry in self._subs.values()
                    for value in entry["latencies"]]

    def snapshot(self) -> dict:
        """JSON-safe summary: per-sub count/p50/p99/mean/max seconds."""
        with self._lock:
            subs = {sid: (entry["tenant"], entry["count"],
                          list(entry["latencies"]))
                    for sid, entry in self._subs.items()}
            completed = self.completed
        pooled: List[float] = []
        rendered = {}
        for sid in sorted(subs):
            tenant, count, samples = subs[sid]
            pooled.extend(samples)
            rendered[sid] = {
                "tenant": tenant,
                "count": count,
                "p50_seconds": percentile(samples, 0.50),
                "p99_seconds": percentile(samples, 0.99),
                "mean_seconds": (sum(samples) / len(samples)
                                 if samples else 0.0),
                "max_seconds": max(samples) if samples else 0.0,
            }
        return {
            "completed": completed,
            "p50_seconds": percentile(pooled, 0.50),
            "p99_seconds": percentile(pooled, 0.99),
            "max_seconds": max(pooled) if pooled else 0.0,
            "subscriptions": rendered,
        }

    def __repr__(self):
        return "<DeliveryTracker %d completed>" % self.completed
