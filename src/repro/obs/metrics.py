"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The quantities the paper's evaluation revolves around — buffer
occupancy, live predicate instances, events per second, per-BPDT
enqueue/clear/flush/upload counts — are registered here by name (with
optional labels) and exported two ways:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# HELP`` / ``# TYPE`` / samples), the ``repro trace
  --metrics`` output;
* :meth:`MetricsRegistry.as_dict` — a plain snapshot for JSONL export
  and programmatic assertions.

Sinks implement one method, ``export(registry)``; :meth:`MetricsRegistry.emit`
pushes the current snapshot to every registered sink (the pluggable-sink
protocol — a JSONL sink ships in this module, a statsd or OTLP sink can
be slotted in from outside without touching engine code).

Disabled metrics are module-level no-op singletons (:data:`NULL_METRICS`
hands out one shared :class:`_NullMetric` for every name), so the hot
path pays one method call that does nothing — and the engines avoid
even that by not instrumenting per-event work unless observability is
attached (verified by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, IO, List, Optional, Sequence, Tuple

# Standard bucket families.  Every histogram in the repo draws its
# bounds from one of these four ladders (count-style ladders are powers
# of two), so exposition stays comparable across metrics and PRs.

#: Default occupancy-style bucket upper bounds (items); chosen to cover
#: the paper's datasets, where peak buffered items stay small unless a
#: predicate resolves late.
DEFAULT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

#: Default latency-style bucket upper bounds (seconds) for per-event
#: dispatch timing.
LATENCY_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 1e-1)

#: Emission-delay bucket upper bounds (events between enqueue and
#: emit/clear) — the power-of-two ladder DEFAULT_BUCKETS uses, extended
#: one rung for the late-resolution tail.  Canonical home of what
#: ``repro.obs.accounting`` historically defined ad hoc.
DELAY_BUCKETS = DEFAULT_BUCKETS + (4096,)

#: Small-count bucket upper bounds for fanout-style histograms (queries
#: matched per dispatched event, children per frame): a dense low range
#: because fanout beyond a handful of queries is already the story.
FANOUT_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 32, 64)

#: End-to-end delivery-latency bucket upper bounds (seconds): feed-call
#: entry to socket write.  Wider than LATENCY_BUCKETS because delivery
#: crosses the outbox queue and the event loop — microseconds at the low
#: end (in-process), out to seconds when a slow subscriber backs up.
DELIVERY_BUCKETS = (1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
                    1e-1, 5e-1, 1.0, 5.0)

#: Alias for structural small counts (depth-vector lengths etc.).
SMALL_COUNT_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16)


def _labels_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping for label values."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Prometheus text-format escaping for HELP lines."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, _escape_label_value(value))
        for key, value in labels)


def _format_value(value: float) -> str:
    if value == int(value):
        return "%d" % int(value)
    return repr(value)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def samples(self) -> List[Tuple[str, str, float]]:
        return [(self.name, _format_labels(self.labels), self.value)]

    def families(self) -> List[Tuple[str, str, List[Tuple[str, str, float]]]]:
        """``(family_name, type, samples)`` groups for exposition."""
        return [(self.name, self.kind, self.samples())]


class Gauge:
    """Point-in-time value; ``set_max`` tracks a high-water mark.

    :meth:`track_max` turns on a monotone high-water companion: the
    gauge additionally exposes its historical maximum as ``<name>_max``
    (and via :attr:`high_water`), updated on every ``set``/``inc``.
    """

    __slots__ = ("name", "labels", "value", "_max")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._max: Optional[float] = None

    def track_max(self) -> "Gauge":
        """Enable the monotone ``<name>_max`` companion; returns self."""
        if self._max is None:
            self._max = self.value
        return self

    @property
    def high_water(self) -> float:
        return self._max if self._max is not None else self.value

    def set(self, value: float) -> None:
        self.value = value
        if self._max is not None and value > self._max:
            self._max = value

    def inc(self, amount: float = 1.0) -> None:
        value = self.value + amount
        self.value = value
        if self._max is not None and value > self._max:
            self._max = value

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value
            if self._max is not None and value > self._max:
                self._max = value

    def samples(self) -> List[Tuple[str, str, float]]:
        rows = [(self.name, _format_labels(self.labels), self.value)]
        if self._max is not None:
            rows.append((self.name + "_max", _format_labels(self.labels),
                         self._max))
        return rows

    def families(self) -> List[Tuple[str, str, List[Tuple[str, str, float]]]]:
        """The ``_max`` companion is its own metric family: exposing it
        under the base gauge's TYPE block is a lint error (sample name
        would not match the family name)."""
        plain = _format_labels(self.labels)
        out = [(self.name, self.kind, [(self.name, plain, self.value)])]
        if self._max is not None:
            out.append((self.name + "_max", self.kind,
                        [(self.name + "_max", plain, self._max)]))
        return out


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus layout)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out, running = [], 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def samples(self) -> List[Tuple[str, str, float]]:
        rows = []
        for bound, running in self.cumulative():
            le = "+Inf" if bound == float("inf") else _format_value(bound)
            labels = self.labels + (("le", le),)
            rows.append((self.name + "_bucket", _format_labels(labels),
                         running))
        plain = _format_labels(self.labels)
        rows.append((self.name + "_sum", plain, self.sum))
        rows.append((self.name + "_count", plain, self.count))
        return rows

    def families(self) -> List[Tuple[str, str, List[Tuple[str, str, float]]]]:
        return [(self.name, self.kind, self.samples())]


class MetricsRegistry:
    """Named metric store with Prometheus-style exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same metric object, so call
    sites need no registration ceremony.
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[tuple, object] = {}
        self._help: Dict[str, str] = {}
        self._sinks: List[object] = []
        # One lock for registration and snapshots: readers (``as_dict``,
        # ``render_prometheus``, the HTTP endpoint, ``xsq top``) see a
        # consistent point-in-time registry even while engine threads
        # register new series mid-refresh.  Individual inc/observe calls
        # stay lock-free (they mutate one metric object).
        self._lock = threading.RLock()

    # -- creation --------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict, **extra):
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, _labels_key(labels), **extra)
                self._metrics[key] = metric
            if help and name not in self._help:
                self._help[name] = help
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- sinks -----------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register an object with ``export(registry)``."""
        self._sinks.append(sink)

    def emit(self) -> None:
        """Push the current snapshot to every sink."""
        for sink in self._sinks:
            sink.export(self)

    # -- export ----------------------------------------------------------

    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def as_dict(self) -> dict:
        """Flat ``name{labels} -> value`` snapshot (histograms expand)."""
        snapshot = {}
        for metric in self.metrics():
            for name, labels, value in metric.samples():
                snapshot[name + labels] = value
        return snapshot

    def dump_state(self) -> List[dict]:
        """Serialize every metric to plain JSON-safe records.

        The cross-process carrier for :meth:`merge_state`: ``TaskPool``
        workers dump their registry into the ``done`` summary and the
        parent folds the records into its own registry, so per-worker
        engine metrics survive the process boundary.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            help_map = dict(self._help)
        records = []
        for metric in metrics:
            record = {"kind": metric.kind, "name": metric.name,
                      "labels": [list(pair) for pair in metric.labels],
                      "help": help_map.get(metric.name, "")}
            if metric.kind == "counter":
                record["value"] = metric.value
            elif metric.kind == "gauge":
                record["value"] = metric.value
                record["max"] = metric._max
            else:
                record["buckets"] = list(metric.buckets)
                record["counts"] = list(metric.counts)
                record["sum"] = metric.sum
                record["count"] = metric.count
            records.append(record)
        return records

    def merge_state(self, records: Sequence[dict]) -> None:
        """Fold :meth:`dump_state` records into this registry.

        Counters and histograms add; gauges max-merge (a worker gauge is
        a point-in-time reading from another process, so the high-water
        interpretation is the only order-independent one).
        """
        for record in records:
            labels = {key: value for key, value in record.get("labels", ())}
            kind = record.get("kind")
            help = record.get("help", "")
            name = record["name"]
            if kind == "counter":
                self.counter(name, help, **labels).inc(
                    record.get("value", 0.0))
            elif kind == "gauge":
                gauge = self.gauge(name, help, **labels)
                if record.get("max") is not None:
                    gauge.track_max()
                gauge.set_max(record.get("value", 0.0))
                if record.get("max") is not None:
                    gauge.set_max(record["max"])
            elif kind == "histogram":
                buckets = tuple(record.get("buckets", DEFAULT_BUCKETS))
                histogram = self.histogram(name, help, buckets=buckets,
                                           **labels)
                if tuple(histogram.buckets) == tuple(sorted(buckets)):
                    for index, count in enumerate(record.get("counts", ())):
                        histogram.counts[index] += count
                    histogram.sum += record.get("sum", 0.0)
                    histogram.count += record.get("count", 0)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, grouped by metric family.

        Lint-clean by construction: exactly one ``# TYPE`` per family
        (a gauge's ``_max`` companion is its own family), ``# HELP``
        before ``# TYPE``, label values escaped, and both family order
        and sample order deterministic (sorted) regardless of
        registration order.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            help_map = dict(self._help)
        # family name -> (type, [(labelset_sort_key, sample_block)]).
        # Blocks keep each metric's internal sample order (histogram
        # buckets must stay in ascending ``le`` order); blocks
        # themselves sort by labelset so output is deterministic.
        families: Dict[str, Tuple[str, List[tuple]]] = {}
        for metric in metrics:
            for fam_name, kind, samples in metric.families():
                block_key = samples[0][1] if samples else ""
                entry = families.get(fam_name)
                if entry is None:
                    families[fam_name] = (kind, [(block_key, samples)])
                else:
                    entry[1].append((block_key, samples))
        lines: List[str] = []
        for fam_name in sorted(families):
            kind, blocks = families[fam_name]
            help_text = help_map.get(fam_name)
            if help_text is None and fam_name.endswith("_max"):
                base_help = help_map.get(fam_name[:-4])
                if base_help:
                    help_text = base_help + " (high-water mark)"
            if help_text:
                lines.append("# HELP %s %s"
                             % (fam_name, _escape_help(help_text)))
            lines.append("# TYPE %s %s" % (fam_name, kind))
            for _key, samples in sorted(blocks, key=lambda b: b[0]):
                for sample, labels, value in samples:
                    lines.append("%s%s %s"
                                 % (sample, labels, _format_value(value)))
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self):
        return "<MetricsRegistry %d metrics>" % len(self._metrics)


class JsonlMetricsSink:
    """Sink that appends one ``{"type": "metrics", ...}`` line per emit.

    Each record carries a ``ts`` field (Unix seconds at export time) so
    repeated emits from a long-running process form a time series.
    """

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def export(self, registry: MetricsRegistry) -> None:
        self._stream.write(json.dumps(
            {"type": "metrics", "ts": time.time(),
             "snapshot": registry.as_dict()},
            sort_keys=True) + "\n")


class _NullMetric:
    """One shared object that satisfies all three metric interfaces."""

    __slots__ = ()
    name = "null"
    labels: tuple = ()
    buckets: tuple = ()
    value = 0.0
    sum = 0.0
    count = 0
    high_water = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def track_max(self) -> "_NullMetric":
        return self

    def observe(self, value: float) -> None:
        pass

    def samples(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class _NullMetricsRegistry(MetricsRegistry):
    """Disabled metrics: every name resolves to the shared no-op metric."""

    enabled = False

    def counter(self, name, help="", **labels):  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name, help="", **labels):  # type: ignore[override]
        return _NULL_METRIC

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS,
                  **labels):  # type: ignore[override]
        return _NULL_METRIC


#: Module-level no-op singleton.
NULL_METRICS = _NullMetricsRegistry()
