"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The quantities the paper's evaluation revolves around — buffer
occupancy, live predicate instances, events per second, per-BPDT
enqueue/clear/flush/upload counts — are registered here by name (with
optional labels) and exported two ways:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# HELP`` / ``# TYPE`` / samples), the ``repro trace
  --metrics`` output;
* :meth:`MetricsRegistry.as_dict` — a plain snapshot for JSONL export
  and programmatic assertions.

Sinks implement one method, ``export(registry)``; :meth:`MetricsRegistry.emit`
pushes the current snapshot to every registered sink (the pluggable-sink
protocol — a JSONL sink ships in this module, a statsd or OTLP sink can
be slotted in from outside without touching engine code).

Disabled metrics are module-level no-op singletons (:data:`NULL_METRICS`
hands out one shared :class:`_NullMetric` for every name), so the hot
path pays one method call that does nothing — and the engines avoid
even that by not instrumenting per-event work unless observability is
attached (verified by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, List, Optional, Sequence, Tuple

#: Default occupancy-style bucket upper bounds (items); chosen to cover
#: the paper's datasets, where peak buffered items stay small unless a
#: predicate resolves late.
DEFAULT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

#: Default latency-style bucket upper bounds (seconds) for per-event
#: dispatch timing.
LATENCY_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 1e-1)


def _labels_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join('%s="%s"' % pair for pair in labels)


def _format_value(value: float) -> str:
    if value == int(value):
        return "%d" % int(value)
    return repr(value)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def samples(self) -> List[Tuple[str, str, float]]:
        return [(self.name, _format_labels(self.labels), self.value)]


class Gauge:
    """Point-in-time value; ``set_max`` tracks a high-water mark.

    :meth:`track_max` turns on a monotone high-water companion: the
    gauge additionally exposes its historical maximum as ``<name>_max``
    (and via :attr:`high_water`), updated on every ``set``/``inc``.
    """

    __slots__ = ("name", "labels", "value", "_max")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._max: Optional[float] = None

    def track_max(self) -> "Gauge":
        """Enable the monotone ``<name>_max`` companion; returns self."""
        if self._max is None:
            self._max = self.value
        return self

    @property
    def high_water(self) -> float:
        return self._max if self._max is not None else self.value

    def set(self, value: float) -> None:
        self.value = value
        if self._max is not None and value > self._max:
            self._max = value

    def inc(self, amount: float = 1.0) -> None:
        value = self.value + amount
        self.value = value
        if self._max is not None and value > self._max:
            self._max = value

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value
            if self._max is not None and value > self._max:
                self._max = value

    def samples(self) -> List[Tuple[str, str, float]]:
        rows = [(self.name, _format_labels(self.labels), self.value)]
        if self._max is not None:
            rows.append((self.name + "_max", _format_labels(self.labels),
                         self._max))
        return rows


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus layout)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out, running = [], 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def samples(self) -> List[Tuple[str, str, float]]:
        rows = []
        for bound, running in self.cumulative():
            le = "+Inf" if bound == float("inf") else _format_value(bound)
            labels = self.labels + (("le", le),)
            rows.append((self.name + "_bucket", _format_labels(labels),
                         running))
        plain = _format_labels(self.labels)
        rows.append((self.name + "_sum", plain, self.sum))
        rows.append((self.name + "_count", plain, self.count))
        return rows


class MetricsRegistry:
    """Named metric store with Prometheus-style exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same metric object, so call
    sites need no registration ceremony.
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[tuple, object] = {}
        self._help: Dict[str, str] = {}
        self._sinks: List[object] = []

    # -- creation --------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict, **extra):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, _labels_key(labels), **extra)
            self._metrics[key] = metric
            if help and name not in self._help:
                self._help[name] = help
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- sinks -----------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register an object with ``export(registry)``."""
        self._sinks.append(sink)

    def emit(self) -> None:
        """Push the current snapshot to every sink."""
        for sink in self._sinks:
            sink.export(self)

    # -- export ----------------------------------------------------------

    def metrics(self) -> List[object]:
        return list(self._metrics.values())

    def as_dict(self) -> dict:
        """Flat ``name{labels} -> value`` snapshot (histograms expand)."""
        snapshot = {}
        for metric in self._metrics.values():
            for name, labels, value in metric.samples():
                snapshot[name + labels] = value
        return snapshot

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, grouped by metric name."""
        by_name: Dict[str, List[object]] = {}
        for metric in self._metrics.values():
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            help_text = self._help.get(name)
            if help_text:
                lines.append("# HELP %s %s" % (name, help_text))
            lines.append("# TYPE %s %s" % (name, group[0].kind))
            for metric in group:
                for sample, labels, value in metric.samples():
                    lines.append("%s%s %s"
                                 % (sample, labels, _format_value(value)))
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self):
        return "<MetricsRegistry %d metrics>" % len(self._metrics)


class JsonlMetricsSink:
    """Sink that appends one ``{"type": "metrics", ...}`` line per emit.

    Each record carries a ``ts`` field (Unix seconds at export time) so
    repeated emits from a long-running process form a time series.
    """

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def export(self, registry: MetricsRegistry) -> None:
        self._stream.write(json.dumps(
            {"type": "metrics", "ts": time.time(),
             "snapshot": registry.as_dict()},
            sort_keys=True) + "\n")


class _NullMetric:
    """One shared object that satisfies all three metric interfaces."""

    __slots__ = ()
    name = "null"
    labels: tuple = ()
    value = 0.0
    sum = 0.0
    count = 0
    high_water = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def track_max(self) -> "_NullMetric":
        return self

    def observe(self, value: float) -> None:
        pass

    def samples(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class _NullMetricsRegistry(MetricsRegistry):
    """Disabled metrics: every name resolves to the shared no-op metric."""

    enabled = False

    def counter(self, name, help="", **labels):  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name, help="", **labels):  # type: ignore[override]
        return _NULL_METRIC

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS,
                  **labels):  # type: ignore[override]
        return _NULL_METRIC


#: Module-level no-op singleton.
NULL_METRICS = _NullMetricsRegistry()
