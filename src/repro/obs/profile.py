"""Execution profiler: EXPLAIN ANALYZE for a streaming XPath run.

The paper's evaluation (Fig 18) splits XSQ's runtime into parse,
automaton and buffer phases; :class:`Profiler` reproduces that split
from *live attribution* instead of separate instrumented builds.  It
rides the same ``obs=`` seam as the rest of :mod:`repro.obs`:

* **Interpreted engines** (XSQ-F, XSQ-NC, grouped multi-query) run a
  profiled pump that timestamps every event exactly once per phase
  boundary — the time between two consecutive clock reads is attributed
  to the phase between them, so parse + automaton sum to the loop's
  wall time by construction.  Buffer and output sub-phases come from a
  wrapping :class:`_ProfiledQueue`; predicate evaluation from gated
  timing inside the matchers' watch scans.
* **The compiled fast path** keeps its batched hot loop: every batch is
  timed at the batch boundary (four clock reads per ~2048 events,
  noise-level), and *per-event* attribution — hot HPDT state, hot tag,
  buffer ops — is sampled on every ``sample_interval``-th batch, then
  scaled.  Unsampled batches execute the unchanged seed loop, so the
  fast path's throughput floor holds.

Phase vocabulary (the keys of :attr:`Profiler.phases`):

=========== ========================================================
``compile``  query text -> HPDT (-> FastPlan), measured by the driver
``parse``    pulling events/batches out of the SAX source
``automaton`` ``runtime.feed`` / ``run_batch`` — transition dispatch
``predicate`` watch scans + verdict tests (inside ``automaton``)
``buffer``   enqueue/clear/upload/finalize ops (inside ``automaton``)
``output``   output marks + head-of-queue drains (inside ``automaton``)
``finish``   end-of-stream drain
=========== ========================================================

``predicate``/``buffer``/``output`` are children of ``automaton``; the
residue (``automaton`` minus children) is reported as transition/match
work.  The windows can overlap by at most the predicate-resolution
cascade time (a witness that flushes an item is counted in both the
predicate scan and the queue op), which the report clamps.

Use via the facade::

    report = repro.compile(query).profile("catalog.xml")
    print(report.render())        # EXPLAIN ANALYZE table
    print(report.folded())        # flamegraph folded stacks
    report.as_dict()              # JSON
    report.fig18()                # the paper's parse/automaton/buffer split

or ``xsq profile QUERY FILE`` on the command line.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

#: Default fast-path sampling interval: one batch in 64 gets per-event
#: attribution (~2048-event batches -> ~1.6% of events pay the per-event
#: clock cost, keeping profiled fast runs within a few percent of seed).
DEFAULT_SAMPLE_INTERVAL = 64

#: Queue methods attributed to the ``buffer`` phase (item bookkeeping).
_BUFFER_OPS = ("new_item", "mark_dead", "upload", "value_finalized")
#: Queue methods attributed to the ``output`` phase (emission path).
_OUTPUT_OPS = ("mark_output", "finish")


class _ProfiledQueue:
    """Timing proxy around an :class:`~repro.xsq.buffers.OutputQueue`.

    Public buffer operations are timed into the profiler's ``buffer``
    and ``output`` phases; everything else (counters, ``track_ownership``,
    the plain-bound method variants) delegates to the wrapped queue, so
    engines' ``_capture_stats`` read through it unchanged.
    """

    __slots__ = ("_inner", "_prof")

    def __init__(self, inner, prof: "Profiler"):
        self._inner = inner
        self._prof = prof

    def __len__(self):
        return len(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _timed(self, phase, method, args, kwargs):
        prof = self._prof
        t0 = prof.clock()
        result = method(*args, **kwargs)
        prof.add_phase(phase, prof.clock() - t0)
        return result

    def new_item(self, *args, **kwargs):
        return self._timed("buffer", self._inner.new_item, args, kwargs)

    def mark_dead(self, *args, **kwargs):
        return self._timed("buffer", self._inner.mark_dead, args, kwargs)

    def upload(self, *args, **kwargs):
        return self._timed("buffer", self._inner.upload, args, kwargs)

    def value_finalized(self, *args, **kwargs):
        return self._timed("buffer", self._inner.value_finalized,
                           args, kwargs)

    def mark_output(self, *args, **kwargs):
        return self._timed("output", self._inner.mark_output, args, kwargs)

    def finish(self, *args, **kwargs):
        return self._timed("output", self._inner.finish, args, kwargs)


class Profiler:
    """Accumulates phase/entity attribution across one or more runs.

    Attach via ``Observability(profile=True)`` (or pass a configured
    instance: ``Observability(profile=Profiler(sample_interval=16))``).
    Engines route their pumps through :meth:`pump_events` /
    :meth:`sample_batch`; drivers stamp :attr:`wall` and call
    :meth:`report`.
    """

    enabled = True

    def __init__(self, sample_interval: int = DEFAULT_SAMPLE_INTERVAL):
        self.clock = time.perf_counter
        self.sample_interval = max(1, int(sample_interval))
        #: phase name -> [seconds, count]
        self.phases: Dict[str, List[float]] = {}
        #: (engine, matched-steps m) -> [seconds, events]
        self.states: Dict[Tuple[str, int], List[float]] = {}
        #: tag -> [seconds, events]
        self.tags: Dict[str, List[float]] = {}
        #: query label -> [seconds, events routed]
        self.queries: Dict[str, List[float]] = {}
        self.engines: List[str] = []
        self.events = 0
        self.results = 0
        #: Fast-path sampling bookkeeping (0 when fully exact).
        self.sampled_events = 0
        self.sampling = False
        #: Driver-measured wall seconds (compile + run), the coverage
        #: denominator.
        self.wall = 0.0

    # -- accumulation ----------------------------------------------------

    def add_phase(self, name: str, seconds: float, count: int = 1) -> None:
        cell = self.phases.get(name)
        if cell is None:
            self.phases[name] = [seconds, count]
        else:
            cell[0] += seconds
            cell[1] += count

    def note_engine(self, name: str) -> None:
        if name not in self.engines:
            self.engines.append(name)

    def _bump(self, table: dict, key, seconds: float) -> None:
        cell = table.get(key)
        if cell is None:
            table[key] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    # -- engine hooks ----------------------------------------------------

    def wrap_runtime(self, runtime) -> None:
        """Install the queue proxy and the matcher predicate hook."""
        if not isinstance(runtime.queue, _ProfiledQueue):
            runtime.queue = _ProfiledQueue(runtime.queue, self)
        # MatcherRuntime/_NCRuntime read ``self.prof`` inside their
        # watch-scan branches; FastRuntime has no such attribute (its
        # predicate work stays inside the automaton residue).
        if hasattr(runtime, "prof"):
            runtime.prof = self

    def pump_events(self, engine: str, events: Iterable, runtime,
                    on_event=None) -> int:
        """The profiled per-event loop for the interpreted engines.

        Consecutive clock reads make parse + automaton equal the loop
        wall exactly: the read that closes one event's feed window opens
        the next event's parse window.
        """
        self.note_engine(engine)
        self.wrap_runtime(runtime)
        clock = self.clock
        feed = runtime.feed
        state_of = getattr(runtime, "profile_state", None)
        states = self.states
        tags = self.tags
        parse = 0.0
        automaton = 0.0
        count = 0
        t0 = clock()
        for event in events:
            t1 = clock()
            if on_event is not None:
                on_event(event)
            m = state_of() if state_of is not None else -1
            feed(event)
            t2 = clock()
            parse += t1 - t0
            dt = t2 - t1
            automaton += dt
            count += 1
            self._bump(states, (engine, m), dt)
            self._bump(tags, event.tag, dt)
            t0 = t2
        self.add_phase("parse", parse, count)
        self.add_phase("automaton", automaton, count)
        self.events += count
        return count

    def pump_dispatch(self, engine: str, events: Iterable, runtimes,
                      labels: List[str], routes_get, default,
                      on_event=None) -> int:
        """Profiled shared-dispatch loop with per-query attribution."""
        self.note_engine(engine)
        for runtime in runtimes:
            self.wrap_runtime(runtime)
        clock = self.clock
        queries = self.queries
        tags = self.tags
        begins = [runtime.on_begin for runtime in runtimes]
        texts = [runtime.on_text for runtime in runtimes]
        ends = [runtime.on_end for runtime in runtimes]
        parse = 0.0
        automaton = 0.0
        count = 0
        t0 = clock()
        for event in events:
            t1 = clock()
            if on_event is not None:
                on_event(event)
            if routes_get is None:
                targets = range(len(runtimes))
            else:
                targets = routes_get(event.tag, default)
            if targets:
                kind = event.kind
                table = (begins if kind == "begin"
                         else ends if kind == "end" else texts)
                for i in targets:
                    q0 = clock()
                    table[i](event)
                    self._bump(queries, labels[i], clock() - q0)
            t2 = clock()
            parse += t1 - t0
            automaton += t2 - t1
            count += 1
            self._bump(tags, event.tag, t2 - t1)
            t0 = t2
        self.add_phase("parse", parse, count)
        self.add_phase("automaton", automaton, count)
        self.events += count
        return count

    def sample_batch(self, engine: str, runtime, batch,
                     tag_names: List[str]) -> None:
        """Per-event attribution for one sampled fast-path batch.

        Feeds the batch one tuple at a time through ``run_batch`` —
        identical semantics, state carried across calls — timing each
        event against the deterministic state (``matched``) and tag.
        The queue proxy is installed for the sampled window only, so
        buffer/output seconds are sampled at the same rate as states.
        """
        self.sampling = True
        clock = self.clock
        run_batch = runtime.run_batch
        states = self.states
        tags = self.tags
        inner = runtime.queue
        if not isinstance(inner, _ProfiledQueue):
            runtime.queue = _ProfiledQueue(inner, self)
        try:
            for event in batch:
                m = runtime.matched
                t0 = clock()
                run_batch((event,))
                dt = clock() - t0
                self._bump(states, (engine, m), dt)
                self._bump(tags, tag_names[event[1]], dt)
            self.sampled_events += len(batch)
        finally:
            if not isinstance(inner, _ProfiledQueue):
                runtime.queue = inner

    def timed_finish(self, runtime) -> None:
        # Unwrap the queue proxy first: the end-of-stream drain belongs
        # to ``finish``, not ``output`` (which sub-divides ``automaton``),
        # and the engine's _capture_stats reads the real queue after.
        queue = runtime.queue
        if isinstance(queue, _ProfiledQueue):
            runtime.queue = queue._inner
        t0 = self.clock()
        runtime.finish()
        self.add_phase("finish", self.clock() - t0)

    # -- report ----------------------------------------------------------

    def report(self, query: str = "", engine: Optional[str] = None,
               stats=None, results: Optional[int] = None) -> "ProfileReport":
        return ProfileReport(
            query=query,
            engine=engine or "+".join(self.engines) or "?",
            wall=self.wall,
            phases={k: tuple(v) for k, v in self.phases.items()},
            states={k: tuple(v) for k, v in self.states.items()},
            tags={k: tuple(v) for k, v in self.tags.items()},
            queries={k: tuple(v) for k, v in self.queries.items()},
            counts=stats.as_dict() if stats is not None else {},
            events=self.events,
            results=self.results if results is None else results,
            sampling=({"interval": self.sample_interval,
                       "sampled_events": self.sampled_events,
                       "scale": (self.events / self.sampled_events
                                 if self.sampled_events else 0.0)}
                      if self.sampling else None),
        )


class ProfileReport:
    """One profiled run, rendered four ways (text/folded/JSON/Fig 18)."""

    #: Sub-phases nested under ``automaton`` in every rendering.
    CHILD_PHASES = ("predicate", "buffer", "output")

    def __init__(self, query: str, engine: str, wall: float,
                 phases: Dict[str, Tuple[float, int]],
                 states: Dict[Tuple[str, int], Tuple[float, int]],
                 tags: Dict[str, Tuple[float, int]],
                 queries: Dict[str, Tuple[float, int]],
                 counts: dict, events: int, results: int,
                 sampling: Optional[dict] = None):
        self.query = query
        self.engine = engine
        self.wall = wall
        self.phases = phases
        self.states = states
        self.tags = tags
        self.queries = queries
        self.counts = counts
        self.events = events
        self.results = results
        self.sampling = sampling

    # -- derived ---------------------------------------------------------

    def _seconds(self, phase: str) -> float:
        return self.phases.get(phase, (0.0, 0))[0]

    def _scale(self) -> float:
        """Sampled-to-total multiplier for sampled sub-phase estimates."""
        if self.sampling and self.sampling["scale"] > 0:
            return self.sampling["scale"]
        return 1.0

    @property
    def attributed_seconds(self) -> float:
        """Top-level phase sum (children are inside ``automaton``)."""
        return (self._seconds("compile") + self._seconds("parse")
                + self._seconds("automaton") + self._seconds("finish"))

    @property
    def coverage(self) -> float:
        """Attributed share of the measured wall time (target >= 0.95)."""
        if self.wall <= 0:
            return 1.0
        return min(1.0, self.attributed_seconds / self.wall)

    def match_seconds(self) -> float:
        """Automaton residue: transition dispatch + (fast path) predicates."""
        scale = self._scale()
        children = sum(self._seconds(p) for p in self.CHILD_PHASES) * scale
        return max(0.0, self._seconds("automaton") - children)

    # -- renderings ------------------------------------------------------

    def render(self, top: int = 8) -> str:
        wall = self.wall if self.wall > 0 else self.attributed_seconds
        wall = wall or 1e-12
        scale = self._scale()
        sampled = self.sampling is not None

        def pct(seconds: float) -> str:
            return "%5.1f%%" % (100.0 * seconds / wall)

        lines = ["EXPLAIN ANALYZE  %s" % (self.query or "<query>")]
        lines.append(
            "engine: %s   events: %s   results: %s   wall: %.6fs   "
            "attributed: %.1f%%"
            % (self.engine, "{:,}".format(self.events),
               "{:,}".format(self.results), wall, 100.0 * self.coverage))
        lines.append("")
        lines.append("%-28s %12s  %7s  %12s" % ("phase", "seconds",
                                                "% wall", "count"))
        rows = [("compile", self._seconds("compile"),
                 self.phases.get("compile", (0, 0))[1], 1.0),
                ("parse/batch", self._seconds("parse"),
                 self.phases.get("parse", (0, 0))[1], 1.0),
                ("automaton (dispatch)", self._seconds("automaton"),
                 self.phases.get("automaton", (0, 0))[1], 1.0)]
        child_rows = []
        for name in self.CHILD_PHASES:
            seconds, count = self.phases.get(name, (0.0, 0))
            if count or seconds:
                child_rows.append((name, seconds * scale, count, scale))
        child_rows.append(("transition/match", self.match_seconds(), 0, 1.0))
        finish_row = ("finish", self._seconds("finish"),
                      self.phases.get("finish", (0, 0))[1], 1.0)
        for name, seconds, count, row_scale in rows:
            lines.append("%-28s %12.6f  %s  %12s"
                         % (name, seconds, pct(seconds),
                            "{:,}".format(count) if count else "-"))
            if name.startswith("automaton"):
                for cname, cseconds, ccount, cscale in child_rows:
                    marker = "~" if sampled and cscale != 1.0 else " "
                    lines.append("  %s%-25s %12.6f  %s  %12s"
                                 % (marker, cname, cseconds, pct(cseconds),
                                    "{:,}".format(ccount) if ccount
                                    else "-"))
        lines.append("%-28s %12.6f  %s  %12s"
                     % (finish_row[0], finish_row[1], pct(finish_row[1]),
                        "{:,}".format(finish_row[2])
                        if finish_row[2] else "-"))
        if self.states:
            lines.append("")
            lines.append("hot HPDT states (m = matched location steps)")
            ranked = sorted(self.states.items(),
                            key=lambda kv: kv[1][0], reverse=True)[:top]
            for (engine, m), (seconds, count) in ranked:
                label = ("m=%d" % m) if m >= 0 else "m=?"
                lines.append("  %-10s %-9s %12.6fs %s  %10s events"
                             % (engine, label, seconds * scale,
                                pct(seconds * scale), "{:,}".format(count)))
        if self.tags:
            lines.append("")
            lines.append("hot tags")
            ranked = sorted(self.tags.items(),
                            key=lambda kv: kv[1][0], reverse=True)[:top]
            for tag, (seconds, count) in ranked:
                lines.append("  %-20s %12.6fs %s  %10s events"
                             % (tag or "(text)", seconds * scale,
                                pct(seconds * scale), "{:,}".format(count)))
        if self.queries:
            lines.append("")
            lines.append("per query (grouped dispatch)")
            ranked = sorted(self.queries.items(),
                            key=lambda kv: kv[1][0], reverse=True)
            for label, (seconds, count) in ranked:
                lines.append("  %-44s %12.6fs %s  %10s events"
                             % (label[:44], seconds, pct(seconds),
                                "{:,}".format(count)))
        if self.counts:
            lines.append("")
            lines.append("buffer ops: " + "  ".join(
                "%s=%s" % (key, self.counts[key])
                for key in ("enqueued", "cleared", "flushed", "uploaded",
                            "emitted") if key in self.counts))
        if sampled:
            lines.append("")
            lines.append(
                "(fast path: per-event rows sampled on 1/%d batches — "
                "%s of %s events — and scaled x%.1f)"
                % (self.sampling["interval"],
                   "{:,}".format(self.sampling["sampled_events"]),
                   "{:,}".format(self.events),
                   self.sampling["scale"]))
        return "\n".join(lines)

    def folded(self) -> str:
        """Folded-stack lines (``a;b;c weight``) for flamegraph tools.

        Weights are integer microseconds; zero-weight frames are
        dropped.  Root frame is the engine name.
        """
        scale = self._scale()
        root = self.engine

        def us(seconds: float) -> int:
            return int(round(seconds * 1e6))

        entries = [
            ("%s;compile" % root, self._seconds("compile")),
            ("%s;stream;parse" % root, self._seconds("parse")),
            ("%s;stream;automaton;transition" % root, self.match_seconds()),
            ("%s;stream;automaton;predicate" % root,
             self._seconds("predicate") * scale),
            ("%s;stream;automaton;buffer" % root,
             self._seconds("buffer") * scale),
            ("%s;stream;automaton;output" % root,
             self._seconds("output") * scale),
            ("%s;finish" % root, self._seconds("finish")),
        ]
        lines = ["%s %d" % (stack, us(seconds))
                 for stack, seconds in entries if us(seconds) > 0]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "type": "profile",
            "query": self.query,
            "engine": self.engine,
            "wall_seconds": self.wall,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "events": self.events,
            "results": self.results,
            "phases": {name: {"seconds": seconds, "count": count}
                       for name, (seconds, count) in
                       sorted(self.phases.items())},
            "match_seconds": self.match_seconds(),
            "states": [{"engine": engine, "matched_steps": m,
                        "seconds": seconds, "events": count}
                       for (engine, m), (seconds, count) in
                       sorted(self.states.items(),
                              key=lambda kv: kv[1][0], reverse=True)],
            "tags": [{"tag": tag, "seconds": seconds, "events": count}
                     for tag, (seconds, count) in
                     sorted(self.tags.items(),
                            key=lambda kv: kv[1][0], reverse=True)],
            "queries": [{"query": label, "seconds": seconds,
                         "events": count}
                        for label, (seconds, count) in
                        sorted(self.queries.items(),
                               key=lambda kv: kv[1][0], reverse=True)],
            "counts": self.counts,
            "sampling": self.sampling,
        }

    def fig18(self) -> dict:
        """The paper's Fig 18 split: parse / automaton / buffer shares.

        Shares are of the *query-phase* runtime (compile excluded, as
        in the figure); ``buffer`` merges the buffer and output phases
        plus the end-of-stream drain.
        """
        scale = self._scale()
        parse = self._seconds("parse")
        buffer_s = ((self._seconds("buffer") + self._seconds("output"))
                    * scale + self._seconds("finish"))
        automaton = (self.match_seconds()
                     + self._seconds("predicate") * scale)
        total = parse + buffer_s + automaton
        if total <= 0:
            total = 1.0
        return {
            "parse": 100.0 * parse / total,
            "automaton": 100.0 * automaton / total,
            "buffer": 100.0 * buffer_s / total,
        }

    def render_fig18(self) -> str:
        split = self.fig18()
        lines = ["Fig 18 phase breakdown (%s, live attribution)"
                 % self.engine]
        for name in ("parse", "automaton", "buffer"):
            share = split[name]
            bar = "#" * int(round(share / 2))
            lines.append("  %-10s %5.1f%%  %s" % (name, share, bar))
        return "\n".join(lines)

    def diff(self, other: "ProfileReport") -> str:
        """Differential mode: phase-by-phase comparison of two runs."""
        lines = ["phase breakdown: %s vs %s" % (self.engine, other.engine)]
        lines.append("%-24s %12s %12s %10s"
                     % ("phase", self.engine[:12], other.engine[:12],
                        "delta"))
        names = ["compile", "parse", "automaton", "predicate", "buffer",
                 "output", "finish"]
        for name in names:
            a = self._seconds(name) * (self._scale()
                                       if name in self.CHILD_PHASES else 1)
            b = other._seconds(name) * (other._scale()
                                        if name in other.CHILD_PHASES
                                        else 1)
            if a == 0 and b == 0:
                continue
            if a > 0:
                delta = "%+.1f%%" % (100.0 * (b - a) / a)
            else:
                delta = "new"
            lines.append("%-24s %12.6f %12.6f %10s" % (name, a, b, delta))
        lines.append("%-24s %12.6f %12.6f" % ("wall", self.wall,
                                              other.wall))
        return "\n".join(lines)

    def __repr__(self):
        return ("<ProfileReport %s events=%d coverage=%.1f%%>"
                % (self.engine, self.events, 100 * self.coverage))


def profile_query(query, source, engine: str = "auto",
                  sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                  cache=None) -> ProfileReport:
    """Profile one evaluation of ``query`` over ``source``.

    ``query`` may be a query string / parsed Query (any engine,
    including unions) or a sequence of queries (grouped multi-query
    run).  Returns a :class:`ProfileReport`; the profiled engine's
    results are discarded (use :meth:`repro.CompiledQuery.run` for
    results, profiling is a measurement pass).
    """
    from repro.obs import Observability

    profiler = Profiler(sample_interval=sample_interval)
    obs = Observability(events=False, profile=profiler)
    clock = profiler.clock
    t0 = clock()
    if isinstance(query, (list, tuple)):
        from repro.xsq.multiquery import MultiQueryEngine
        eng = MultiQueryEngine(list(query), obs=obs, cache=cache)
        label = " | ".join(q.text if hasattr(q, "text") else str(q)
                           for q in eng.queries)
    else:
        from repro.api import select_engine
        eng = select_engine(query, engine, obs=obs, cache=cache)
        label = query if isinstance(query, str) else (query.text or "")
    profiler.add_phase("compile", clock() - t0)
    t1 = clock()
    results = eng.run(source)
    profiler.wall = clock() - t0
    if isinstance(query, (list, tuple)):
        result_count = sum(len(r) for r in results)
    else:
        result_count = len(results)
    return profiler.report(query=label, engine=eng.name, stats=eng.stats,
                           results=result_count)
