"""Flight recorder: a bounded ring of recent structured events.

A production incident on a long-running ``xsq serve`` should yield a
postmortem artifact, not nothing.  The recorder keeps the last N
structured events — finished spans, drop reports, quota rejections,
audit violations, connection lifecycle, errors — in a fixed-size deque
and dumps them as one JSON document on demand: unhandled exception,
``SIGUSR2``, the ``dump`` JSONL op, or ``xsq flight-dump``.

Recording is cheap (one dict build + deque append under a lock) and
*absent* by default: nothing records unless a recorder is attached
(``Observability(recorder=True)`` or the server's always-on ring), so
the engine hot paths never see it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import List, Optional

#: Default ring capacity (events retained).
DEFAULT_CAPACITY = 512

#: Artifact format version, bumped on layout changes.
SNAPSHOT_VERSION = 1


class FlightRecorder:
    """Fixed-capacity ring buffer of structured events.

    Thread-safe: engines, asyncio callbacks and signal handlers may
    record concurrently with a dump from the metrics HTTP thread.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, clock=time.time):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.recorded = 0
        self._clock = clock
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dump_seq = itertools.count(1)

    def record(self, kind: str, **fields) -> None:
        """Append one event; oldest events fall off past capacity."""
        event = {"kind": kind, "ts": round(self._clock(), 6)}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self.recorded += 1

    def record_span(self, span) -> None:
        """Hook target for :attr:`repro.obs.spans.Tracer.on_finish`."""
        fields = {"name": span.name,
                  "duration": round(span.duration, 9)}
        if span.attrs:
            fields["attrs"] = dict(span.attrs)
        self.record("span", **fields)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> List[dict]:
        """Copy of the retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def snapshot(self, reason: Optional[str] = None) -> dict:
        """The postmortem artifact as a JSON-safe dict."""
        with self._lock:
            events = list(self._events)
            recorded = self.recorded
        snap = {
            "type": "flight-recorder",
            "version": SNAPSHOT_VERSION,
            "captured_at": round(time.time(), 6),
            "pid": os.getpid(),
            "capacity": self.capacity,
            "recorded": recorded,
            "dropped": recorded - len(events),
            "events": events,
        }
        if reason is not None:
            snap["reason"] = reason
        return snap

    def dump_json(self, reason: Optional[str] = None,
                  indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(reason), sort_keys=True,
                          indent=indent)

    def dump(self, dir: str = ".", reason: Optional[str] = None,
             path: Optional[str] = None) -> str:
        """Write the artifact to disk; returns the path written.

        Filenames are ``xsq-flight-<pid>-<seq>.json`` so repeated dumps
        from one process never clobber each other.
        """
        if path is None:
            path = os.path.join(
                dir, "xsq-flight-%d-%d.json"
                % (os.getpid(), next(self._dump_seq)))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_json(reason, indent=2))
            handle.write("\n")
        return path

    def __repr__(self):
        return ("<FlightRecorder %d/%d events (%d recorded)>"
                % (len(self), self.capacity, self.recorded))
