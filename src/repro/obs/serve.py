"""Stdlib-only HTTP surface for live metrics and health.

:class:`MetricsServer` mounts read-only routes on a daemon thread,
backed entirely by an :class:`~repro.obs.Observability` bundle:

========== ==========================================================
``/metrics``  Prometheus text exposition (``text/plain; version=0.0.4``)
``/healthz``  liveness JSON: ``{"status": "ok", "uptime_seconds", ...}``
``/snapshot`` the ``xsq top`` payload (``Observability.snapshot()``)
``/flight``   flight-recorder ring as JSON (bundles with a recorder)
========== ==========================================================

Because :meth:`~repro.parallel.bulk.run_bulk` folds worker stats into
the *parent* bundle's registry, pointing the server at that bundle
aggregates across all forked workers for free — scrape one port, see
the whole pool.  This is the observability front-end the push-mode
"XSQ as a service" north star will mount.

Start it three ways::

    obs = Observability(serve=9099)          # at construction
    obs.serve(port=0)                        # later; 0 = ephemeral port
    xsq serve-metrics QUERY file.xml         # from the command line

The server is intentionally not general-purpose: no TLS, no auth,
binds loopback by default.  Expose it beyond localhost deliberately.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve one Observability bundle's registry over HTTP."""

    def __init__(self, obs, port: int = 0, host: str = "127.0.0.1"):
        self.obs = obs
        self.host = host
        self._started = time.time()
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server", daemon=True)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MetricsServer":
        if not self._thread.is_alive():
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    # -- payloads --------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "pid": os.getpid(),
            "metrics": len(self.obs.metrics.metrics()),
        }

    def _routes(self):
        obs = self.obs
        routes = {
            "/metrics": lambda: (PROMETHEUS_CONTENT_TYPE,
                                 obs.metrics.render_prometheus()),
            "/healthz": lambda: ("application/json",
                                 json.dumps(self.health(),
                                            sort_keys=True) + "\n"),
            "/snapshot": lambda: ("application/json",
                                  json.dumps(obs.snapshot(),
                                             sort_keys=True) + "\n"),
        }
        flight = getattr(obs, "flight", None)
        if flight is not None:
            routes["/flight"] = lambda: (
                "application/json",
                json.dumps(flight.snapshot(reason="http"),
                           sort_keys=True) + "\n")
        return routes

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                route = server._routes().get(self.path.split("?", 1)[0])
                if route is None:
                    body = json.dumps(
                        {"error": "not found",
                         "routes": sorted(server._routes())}) + "\n"
                    self._reply(404, "application/json", body)
                    return
                try:
                    content_type, body = route()
                except Exception as exc:  # pragma: no cover - defensive
                    self._reply(500, "application/json",
                                json.dumps({"error": str(exc)}) + "\n")
                    return
                self._reply(200, content_type, body)

            def _reply(self, status, content_type, body):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, format, *args):
                pass  # stay silent; this shares stdout with xsq output

        return Handler

    def __repr__(self):
        return "<MetricsServer %s>" % self.url
