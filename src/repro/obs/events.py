"""Execution tracing: SAX event -> transition -> buffer-op records.

:class:`EventTrace` promotes the test-only ``BufferTrace`` of
``repro.xsq.buffers`` into a general execution trace.  A runtime tells
the trace about every stream event (:meth:`EventTrace.on_event`); the
output queue keeps calling the inherited ``record`` hook for every
buffer operation, and each operation is annotated with the event that
caused it plus the identity of the buffered item it touched.  The
result is a replayable record of the paper's Section 4.3 machinery:

* :meth:`jsonl_lines` — one JSON object per buffer operation
  (``{"type": "buffer_op", ...}``), the ``repro trace --jsonl`` payload;
* :meth:`explain` — per-item journeys in prose: which BPDT buffer each
  result flowed through, and why non-results were cleared;
* :meth:`replay` — re-applies the recorded operations to a fresh
  :class:`~repro.xsq.buffers.OutputQueue`, reproducing the emitted
  sequence without the engine; divergence between a replay and a live
  run pinpoints nondeterministic closure bugs to a single operation.

``EventTrace`` is a ``BufferTrace`` subclass, so everything that accepts
the old class (both engines' ``trace=True`` path, the worked-example
tests) accepts it unchanged.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xsq.buffers import BufferTrace, OutputQueue


class BufferOp:
    """One buffer operation, annotated with its causing stream event."""

    __slots__ = ("op", "bpdt", "value", "depth_vector", "item_seq",
                 "event_seq", "event_kind", "event_tag", "event_depth")

    def __init__(self, op: str, bpdt: Tuple[int, int], value: Optional[str],
                 depth_vector: tuple, item_seq: Optional[int],
                 event_seq: int, event_kind: Optional[str],
                 event_tag: Optional[str], event_depth: int):
        self.op = op
        self.bpdt = bpdt
        self.value = value
        self.depth_vector = depth_vector
        self.item_seq = item_seq
        self.event_seq = event_seq
        self.event_kind = event_kind
        self.event_tag = event_tag
        self.event_depth = event_depth

    def as_dict(self) -> dict:
        return {
            "type": "buffer_op",
            "op": self.op,
            "bpdt": list(self.bpdt),
            "value": self.value,
            "depth_vector": list(self.depth_vector),
            "item": self.item_seq,
            "event": {
                "seq": self.event_seq,
                "kind": self.event_kind,
                "tag": self.event_tag,
                "depth": self.event_depth,
            },
        }

    def event_label(self) -> str:
        if self.event_kind == "begin":
            return "<%s>" % self.event_tag
        if self.event_kind == "end":
            return "</%s>" % self.event_tag
        if self.event_kind == "text":
            return "text in <%s>" % self.event_tag
        return "end of stream"

    def __repr__(self):
        return "<BufferOp %s bpdt%r item=%r at %s>" % (
            self.op, self.bpdt, self.item_seq, self.event_label())


class EventTrace(BufferTrace):
    """General execution trace; drop-in superset of ``BufferTrace``."""

    def __init__(self):
        super().__init__()
        self.records: List[BufferOp] = []
        self._event_seq = -1
        self._event_kind: Optional[str] = None
        self._event_tag: Optional[str] = None
        self._event_depth = 0

    # -- feeding ---------------------------------------------------------

    def on_event(self, event) -> None:
        """Called by the runtime once per stream event, before dispatch."""
        self._event_seq += 1
        self._event_kind = event.kind
        self._event_tag = event.tag
        self._event_depth = event.depth

    def record(self, op: str, bpdt_id: Tuple[int, int],
               value: Optional[str], depth_vector: tuple = (),
               item_seq: Optional[int] = None) -> None:
        super().record(op, bpdt_id, value, depth_vector)
        self.records.append(BufferOp(
            op, bpdt_id, value, depth_vector, item_seq,
            self._event_seq, self._event_kind, self._event_tag,
            self._event_depth))

    # -- export ----------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        for record in self.records:
            yield json.dumps(record.as_dict(), sort_keys=True)

    def journeys(self) -> Dict[int, List[BufferOp]]:
        """Records grouped by buffered item, in operation order."""
        grouped: Dict[int, List[BufferOp]] = {}
        for record in self.records:
            if record.item_seq is not None:
                grouped.setdefault(record.item_seq, []).append(record)
        return grouped

    def explain(self) -> str:
        """Per-item prose: the buffer journey and the final verdict."""
        lines: List[str] = []
        for item_seq, ops in sorted(self.journeys().items()):
            value = next((op.value for op in reversed(ops)
                          if op.value is not None), None)
            shown = ("%r" % value) if value is not None else "<element>"
            sent = any(op.op == "send" for op in ops)
            verdict = "RESULT" if sent else "cleared"
            lines.append("item #%d %s [%s]" % (item_seq, shown, verdict))
            for op in ops:
                lines.append("  %s" % self._describe(op))
        if not lines:
            return "(no items were buffered)"
        return "\n".join(lines)

    @staticmethod
    def _describe(op: BufferOp) -> str:
        where = "bpdt(%d,%d)" % op.bpdt
        at = op.event_label()
        if op.op == "enqueue":
            return ("enqueued into the %s buffer at %s (all governing "
                    "predicates still NA)" % (where, at))
        if op.op == "upload":
            return ("uploaded to the %s buffer at %s (a lower predicate "
                    "resolved true; ownership moves up the HPDT)"
                    % (where, at))
        if op.op == "flush":
            return ("flushed at %s: the last governing predicate resolved "
                    "true in %s; marked output" % (at, where))
        if op.op == "clear":
            if op.event_kind == "end":
                return ("cleared from the %s buffer at %s: the element "
                        "ended with its predicate still NA, so every "
                        "embedding through it failed (NA->START)"
                        % (where, at))
            return ("cleared from the %s buffer at %s: a governing "
                    "predicate was falsified" % (where, at))
        if op.op == "send":
            return "sent to the output at %s (reached the queue head)" % at
        return "%s at %s in %s" % (op.op, at, where)

    # -- replay ----------------------------------------------------------

    def replay(self) -> List[str]:
        """Re-apply the recorded operations to a fresh queue.

        Returns the values the replayed queue emitted; a live run and
        its replay must agree (asserted by the test suite), which makes
        the trace a self-contained repro for buffer-discipline bugs.
        """
        sink: List[str] = []
        queue = OutputQueue(sink)
        items: Dict[int, object] = {}
        for record in self.records:
            seq = record.item_seq
            if seq is None:
                continue
            if record.op == "enqueue":
                items[seq] = queue.new_item(
                    record.value, record.bpdt,
                    value_ready=record.value is not None)
                continue
            item = items.get(seq)
            if item is None:
                continue
            if record.value is not None and item.value is None:
                # The live run finalized a catchall value after enqueue.
                item.value = record.value
                queue.value_finalized(item)
            if record.op == "upload":
                queue.upload(item, record.bpdt)
            elif record.op == "flush":
                queue.mark_output(item)
            elif record.op == "clear":
                queue.mark_dead(item)
            # "send" is an effect, not an input: the replayed queue
            # produces its own sends, which is the point of replaying.
        queue.finish()
        return sink

    def __repr__(self):
        return "<EventTrace %d ops over %d events>" % (
            len(self.records), self._event_seq + 1)
