"""Recursive-descent parser for the XPath subset (grammar of Figure 3).

``parse_query`` is the single entry point used everywhere else.  The
parser is strict about the subset boundary: constructs from full
XPath 1.0 that XSQ explicitly excludes (reverse axes, positional
predicates) raise :class:`UnsupportedFeatureError` with a pointed
message instead of a generic syntax error.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import UnsupportedFeatureError, XPathSyntaxError
from repro.xpath.ast import (
    AttrCompare,
    AttrExists,
    AvgOutput,
    Axis,
    AttrOutput,
    ChildAttrCompare,
    ChildAttrExists,
    ChildExists,
    ChildTextCompare,
    CountOutput,
    ElementOutput,
    LocationStep,
    MaxOutput,
    MinOutput,
    NotPredicate,
    Op,
    OrPredicate,
    Output,
    PathAttrCompare,
    PathAttrExists,
    PathExists,
    PathTextCompare,
    Predicate,
    Query,
    SumOutput,
    TextCompare,
    TextExists,
    TextOutput,
)
from repro.xpath.tokens import (
    REVERSE_AXES,
    Token,
    TokenKind,
    tokenize_query,
)

_AGGREGATES = {
    "count": CountOutput,
    "sum": SumOutput,
    "avg": AvgOutput,
    "min": MinOutput,
    "max": MaxOutput,
}

_POSITIONAL = ("last", "position")


class _Parser:
    def __init__(self, query: str):
        self.query = query
        self.tokens = tokenize_query(query)
        self.index = 0

    # -- token helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END:
            self.index += 1
        return token

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.current.kind is kind:
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.accept(kind)
        if token is None:
            self.fail("expected %s, found %r" % (what, self.current.value or
                                                 "end of query"))
        return token

    def fail(self, message: str):
        raise XPathSyntaxError(message, query=self.query,
                               position=self.current.position)

    # -- grammar -------------------------------------------------------

    def parse(self) -> Query:
        steps: List[LocationStep] = []
        output: Output = ElementOutput()
        if self.current.kind not in (TokenKind.SLASH, TokenKind.DSLASH):
            self.fail("query must start with '/' or '//'")
        while self.current.kind in (TokenKind.SLASH, TokenKind.DSLASH):
            axis = (Axis.DESCENDANT
                    if self.advance().kind is TokenKind.DSLASH else Axis.CHILD)
            parsed = self.parse_step_or_output(axis)
            if isinstance(parsed, Output):
                output = parsed
                break
            steps.append(parsed)
        if self.current.kind is TokenKind.PIPE:
            self.fail("top-level union '|': parse with parse_query_set() "
                      "or compile through repro.compile()")
        if self.current.kind is not TokenKind.END:
            self.fail("trailing input after query")
        if not steps:
            self.fail("query has no location steps")
        return Query(tuple(steps), output, text=self.query)

    def parse_step_or_output(self, axis: Axis):
        """Parse one ``N`` production, or the trailing output ``O``."""
        token = self.current
        if token.kind is TokenKind.AT:
            self.advance()
            name = self.expect(TokenKind.NAME, "attribute name")
            self.expect_end_after_output()
            return AttrOutput(name.value)
        if token.kind is TokenKind.FUNC:
            self.advance()
            return self.make_output_function(token)
        if token.kind is TokenKind.STAR:
            self.advance()
            node_test = "*"
        elif token.kind is TokenKind.NAME:
            self.advance()
            node_test = token.value
            if node_test.endswith("::"):
                axis_name = node_test[:-2]
                self.reject_axis_syntax(axis_name, token)
                if axis_name == "descendant":
                    # /descendant::x is exactly the abbreviated //x.
                    axis = Axis.DESCENDANT
                node_test = self.expect(TokenKind.NAME, "node test").value
        else:
            self.fail("expected a node test, '@attr', or an output function")
        predicates = []
        while self.current.kind is TokenKind.LBRACKET:
            predicates.extend(self.parse_predicate())
        return LocationStep(axis, node_test, tuple(predicates))

    def make_output_function(self, token: Token) -> Output:
        name = token.value
        if name == "text":
            self.expect_end_after_output()
            return TextOutput()
        if name in _AGGREGATES:
            self.expect_end_after_output()
            return _AGGREGATES[name]()
        if name in _POSITIONAL:
            raise UnsupportedFeatureError(
                "positional function %s() is outside the XSQ subset "
                "(Section 2.2 of the paper)" % name)
        self.fail("unknown output function %s()" % name)

    def expect_end_after_output(self):
        if self.current.kind is not TokenKind.END:
            self.fail("output expression must be the last query component")

    def reject_axis_syntax(self, axis_name: str, token: Token):
        if axis_name in REVERSE_AXES:
            raise UnsupportedFeatureError(
                "reverse axis %r is outside the XSQ subset "
                "(Section 2.2 of the paper)" % axis_name)
        if axis_name in ("child", "descendant"):
            return  # child:: is the default axis; descendant:: is //
        if axis_name == "descendant-or-self":
            raise UnsupportedFeatureError(
                "descendant-or-self:: with a node test includes the "
                "context node, which '//' cannot express; use "
                "descendant:: (or '//') for proper descendants")
        raise XPathSyntaxError("unknown axis %r" % axis_name,
                               query=self.query, position=token.position)

    def parse_predicate(self) -> Tuple[Predicate, ...]:
        """Parse one ``[...]``; returns one or more predicates.

        A top-level ``and`` splits into several conjunct predicates
        (``[a and b]`` ≡ ``[a][b]``); ``or`` builds an
        :class:`OrPredicate`.  Mixing the two inside one bracket would
        need nested boolean structure and is rejected with a hint.
        """
        self.expect(TokenKind.LBRACKET, "'['")
        token = self.current
        if token.kind is TokenKind.NUMBER:
            raise UnsupportedFeatureError(
                "positional predicate [%s] is outside the XSQ subset"
                % token.value)
        operands = [self.parse_filter_body()]
        combinator = None
        while (self.current.kind is TokenKind.NAME
               and self.current.value in ("and", "or")):
            word = self.advance().value
            if combinator is None:
                combinator = word
            elif combinator != word:
                raise UnsupportedFeatureError(
                    "mixing 'and' and 'or' in one predicate is not "
                    "supported; split conjuncts into separate [..] "
                    "predicates")
            operands.append(self.parse_filter_body())
        self.expect(TokenKind.RBRACKET, "']'")
        if combinator == "or":
            try:
                return (OrPredicate(tuple(operands)),)
            except ValueError as exc:
                raise UnsupportedFeatureError(str(exc)) from exc
        return tuple(operands)

    def parse_filter_body(self) -> Predicate:
        token = self.current
        if token.kind is TokenKind.NAME and token.value == "not" \
                and self.tokens[self.index + 1].kind is TokenKind.LPAREN:
            self.advance()  # not
            self.advance()  # (
            inner = self.parse_filter_body()
            self.expect(TokenKind.RPAREN, "')'")
            try:
                return NotPredicate(inner)
            except ValueError as exc:
                raise UnsupportedFeatureError(str(exc)) from exc
        if token.kind is TokenKind.AT:
            self.advance()
            attr = self.expect(TokenKind.NAME, "attribute name").value
            comparison = self.parse_optional_comparison()
            if comparison is None:
                return AttrExists(attr)
            return AttrCompare(attr, *comparison)
        if token.kind is TokenKind.FUNC and token.value == "text":
            self.advance()
            comparison = self.parse_optional_comparison()
            if comparison is None:
                return TextExists()
            return TextCompare(*comparison)
        if token.kind is TokenKind.FUNC and token.value in _POSITIONAL:
            raise UnsupportedFeatureError(
                "positional function %s() in a predicate is outside the "
                "XSQ subset" % token.value)
        if token.kind in (TokenKind.NAME, TokenKind.STAR):
            self.advance()
            path = ["*" if token.kind is TokenKind.STAR else token.value]
            while self.accept(TokenKind.SLASH):
                part = self.current
                if part.kind is TokenKind.STAR:
                    self.advance()
                    path.append("*")
                elif part.kind is TokenKind.NAME:
                    self.advance()
                    path.append(part.value)
                else:
                    self.fail("expected a name after '/' in a path "
                              "predicate")
            if self.accept(TokenKind.AT):
                attr = self.expect(TokenKind.NAME, "attribute name").value
                comparison = self.parse_optional_comparison()
                if len(path) == 1:
                    if comparison is None:
                        return ChildAttrExists(path[0], attr)
                    return ChildAttrCompare(path[0], attr, *comparison)
                if comparison is None:
                    return PathAttrExists(tuple(path), attr)
                return PathAttrCompare(tuple(path), attr, *comparison)
            comparison = self.parse_optional_comparison()
            if len(path) == 1:
                if comparison is None:
                    return ChildExists(path[0])
                return ChildTextCompare(path[0], *comparison)
            if comparison is None:
                return PathExists(tuple(path))
            return PathTextCompare(tuple(path), *comparison)
        self.fail("expected a predicate body after '['")

    def parse_optional_comparison(self) -> Optional[Tuple[Op, str]]:
        token = self.accept(TokenKind.OP)
        if token is None:
            return None
        op = Op(token.value)
        value = self.current
        if value.kind in (TokenKind.STRING, TokenKind.NUMBER):
            self.advance()
            return (op, value.value)
        if value.kind is TokenKind.NAME:
            # Bare-word constants appear in the paper's own queries,
            # e.g. [LINE%love]-style keyword tests; accept them.
            self.advance()
            return (op, value.value)
        self.fail("expected a constant after %r" % token.value)


def parse_query_set(text: str) -> Tuple[Query, ...]:
    """Parse a top-level union ``q1 | q2 | ...`` into its branches.

    A single query parses to a one-element tuple.  Pipes inside string
    literals do not split (the lexer sees them as literal content).

    >>> len(parse_query_set("/a/b | //c/text()"))
    2
    >>> len(parse_query_set("/a[x='p|q']"))
    1
    """
    if not text or not text.strip():
        raise XPathSyntaxError("empty query", query=text, position=0)
    tokens = tokenize_query(text.strip())
    cuts = [token.position for token in tokens
            if token.kind is TokenKind.PIPE]
    if not cuts:
        return (parse_query(text),)
    stripped = text.strip()
    parts = []
    start = 0
    for cut in cuts:
        parts.append(stripped[start:cut])
        start = cut + 1
    parts.append(stripped[start:])
    return tuple(parse_query(part) for part in parts)


def parse_query(query: str) -> Query:
    """Parse an XPath query in the supported subset.

    >>> q = parse_query("//pub[year>2000]//book[author]//name/text()")
    >>> len(q.steps), q.has_closure
    (3, True)
    >>> q.steps[0].predicates
    ([year>2000],)
    >>> type(parse_query("/a/b").output).__name__
    'ElementOutput'
    """
    if not query or not query.strip():
        raise XPathSyntaxError("empty query", query=query, position=0)
    return _Parser(query.strip()).parse()
