"""Lexer for the XPath subset of Figure 3.

The token stream is deliberately small: path separators, names, the
``@`` attribute marker, bracketed predicates, comparison operators,
literals, and the handful of zero-argument functions (``text()`` and the
aggregates).  The paper's ``contains`` operator is lexed as an operator
token when it appears in operator position (the parser decides; here it
is just a NAME followed by special handling, see ``_looks_like_op``).
"""

from __future__ import annotations

import re
from enum import Enum
from typing import List, NamedTuple, Optional

from repro.errors import XPathSyntaxError


class TokenKind(Enum):
    SLASH = "/"
    DSLASH = "//"
    NAME = "name"
    STAR = "*"
    AT = "@"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    PIPE = "|"
    FUNC = "func"          # name immediately followed by "()"
    OP = "op"              # > >= = < <= != contains
    STRING = "string"
    NUMBER = "number"
    END = "end"


class Token(NamedTuple):
    kind: TokenKind
    value: str
    position: int

    def __repr__(self):
        return "Token(%s, %r, @%d)" % (self.kind.name, self.value,
                                       self.position)


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")
_WS_RE = re.compile(r"\s+")

#: Multi-character operators must be tried before their prefixes.
_OPERATORS = (">=", "<=", "!=", ">", "<", "=")

#: Functions allowed by the grammar (predicate FO and output O).
KNOWN_FUNCTIONS = ("text", "count", "sum", "avg", "min", "max", "last",
                   "position")

#: Reverse axes from full XPath; recognized only to give a clear
#: "unsupported" diagnostic rather than a confusing parse error.
REVERSE_AXES = ("preceding-sibling", "preceding", "ancestor",
                "ancestor-or-self", "parent")


def tokenize_query(query: str) -> List[Token]:
    """Tokenize ``query``; raise :class:`XPathSyntaxError` on bad input.

    >>> [t.kind.name for t in tokenize_query("/a[@id=1]")]
    ['SLASH', 'NAME', 'LBRACKET', 'AT', 'NAME', 'OP', 'NUMBER', 'END']
    """
    tokens: List[Token] = []
    pos = 0
    n = len(query)
    while pos < n:
        ch = query[pos]
        ws = _WS_RE.match(query, pos)
        if ws:
            pos = ws.end()
            continue
        if ch == "/":
            if query.startswith("//", pos):
                tokens.append(Token(TokenKind.DSLASH, "//", pos))
                pos += 2
            else:
                tokens.append(Token(TokenKind.SLASH, "/", pos))
                pos += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenKind.STAR, "*", pos))
            pos += 1
            continue
        if ch == "@":
            tokens.append(Token(TokenKind.AT, "@", pos))
            pos += 1
            continue
        if ch == "[":
            tokens.append(Token(TokenKind.LBRACKET, "[", pos))
            pos += 1
            continue
        if ch == "]":
            tokens.append(Token(TokenKind.RBRACKET, "]", pos))
            pos += 1
            continue
        if ch == "|":
            tokens.append(Token(TokenKind.PIPE, "|", pos))
            pos += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", pos))
            pos += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", pos))
            pos += 1
            continue
        matched_op = _match_operator(query, pos)
        if matched_op:
            tokens.append(Token(TokenKind.OP, matched_op, pos))
            pos += len(matched_op)
            continue
        if ch in ("'", '"'):
            end = query.find(ch, pos + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal",
                                       query=query, position=pos)
            tokens.append(Token(TokenKind.STRING, query[pos + 1:end], pos))
            pos = end + 1
            continue
        num = _NUMBER_RE.match(query, pos)
        if num and not _NAME_RE.match(query, pos):
            tokens.append(Token(TokenKind.NUMBER, num.group(), pos))
            pos = num.end()
            continue
        name = _NAME_RE.match(query, pos)
        if name:
            word = name.group()
            after = name.end()
            if word == "contains" and _in_operator_position(tokens):
                tokens.append(Token(TokenKind.OP, "contains", pos))
                pos = after
                continue
            if query.startswith("()", after):
                tokens.append(Token(TokenKind.FUNC, word, pos))
                pos = after + 2
                continue
            if query.startswith("::", after):
                # axis::name syntax; surfaced to the parser as a NAME with
                # the axis prefix so it can reject reverse axes clearly.
                tokens.append(Token(TokenKind.NAME, word + "::", pos))
                pos = after + 2
                continue
            if query.startswith(":", after):
                # Namespace-prefixed name (dc:title).  Prefixes are
                # opaque here — XSQ is namespace-unaware, matching tags
                # textually like the paper's system.
                local = _NAME_RE.match(query, after + 1)
                if local is None:
                    raise XPathSyntaxError(
                        "expected a local name after %r:" % word,
                        query=query, position=after)
                word = "%s:%s" % (word, local.group())
                after = local.end()
            tokens.append(Token(TokenKind.NAME, word, pos))
            pos = after
            continue
        raise XPathSyntaxError("unexpected character %r" % ch,
                               query=query, position=pos)
    tokens.append(Token(TokenKind.END, "", n))
    return tokens


def _match_operator(query: str, pos: int) -> Optional[str]:
    for op in _OPERATORS:
        if query.startswith(op, pos):
            return op
    return None


def _in_operator_position(tokens: List[Token]) -> bool:
    """True when the previous token can be the left operand of an OP.

    Distinguishes the ``contains`` *operator* (``[text() contains 'x']``)
    from an element that happens to be named ``contains``
    (``/contains/text()``).
    """
    if not tokens:
        return False
    prev = tokens[-1]
    return prev.kind in (TokenKind.FUNC, TokenKind.NAME)
