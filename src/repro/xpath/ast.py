"""AST for the XPath subset, with the value-comparison semantics shared
by every engine in the repository.

The comparison rules (documented in DESIGN.md) are:

* ``=`` / ``!=``: if both operands parse as numbers, compare
  numerically; otherwise compare the raw strings (whitespace-trimmed).
* ``<``, ``<=``, ``>``, ``>=``: numeric comparison; if either side is
  not numeric the comparison is false (XPath 1.0 coerces to NaN, and
  NaN comparisons are false).
* ``contains``: substring test on the raw strings.

Predicates carry a ``category`` attribute naming the paper's five-way
classification from Section 3.2, which selects the BPDT template.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple


class Axis(Enum):
    """Location-step axis: ``/`` (child) or ``//`` (descendant-or-self)."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self):
        return self.value


class Op(Enum):
    """Comparison operator of the grammar's OP production."""

    GT = ">"
    GE = ">="
    EQ = "="
    LT = "<"
    LE = "<="
    NE = "!="
    CONTAINS = "contains"

    def __str__(self):
        return self.value


def _as_number(text: str) -> Optional[float]:
    try:
        return float(text.strip())
    except (ValueError, AttributeError):
        return None


def compare(left: str, op: Op, right: str) -> bool:
    """Apply ``op`` between a data value and a query constant.

    >>> compare("2002", Op.GT, "2000")
    True
    >>> compare("abc", Op.GT, "2000")
    False
    >>> compare(" 10.0 ", Op.EQ, "10")
    True
    >>> compare("First Folio", Op.CONTAINS, "Folio")
    True
    """
    if op is Op.CONTAINS:
        return right in left
    lnum = _as_number(left)
    rnum = _as_number(right)
    if op is Op.EQ:
        if lnum is not None and rnum is not None:
            return lnum == rnum
        return left.strip() == right.strip()
    if op is Op.NE:
        if lnum is not None and rnum is not None:
            return lnum != rnum
        return left.strip() != right.strip()
    if lnum is None or rnum is None:
        return False
    if op is Op.GT:
        return lnum > rnum
    if op is Op.GE:
        return lnum >= rnum
    if op is Op.LT:
        return lnum < rnum
    if op is Op.LE:
        return lnum <= rnum
    raise AssertionError("unhandled operator %r" % op)


def test_tag(node_test: str, tag: str) -> bool:
    """Match a node test (``*`` is the wildcard) against an element tag."""
    return node_test == "*" or node_test == tag


class Predicate:
    """Base class for the grammar's ``F`` production.

    Subclasses set :attr:`category` to the paper's Section 3.2 class
    number (1–5), which picks the BPDT template, and
    :attr:`resolves_at_begin` when the predicate is fully decidable from
    the element's own begin event (category 1).
    """

    category: int = 0
    resolves_at_begin: bool = False

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class AttrExists(Predicate):
    """``[@attr]`` — category 1: the element has the attribute."""

    category = 1
    resolves_at_begin = True

    def __init__(self, attr: str):
        self.attr = attr

    def __repr__(self):
        return "[@%s]" % self.attr


class AttrCompare(Predicate):
    """``[@attr OP c]`` — category 1: attribute value comparison."""

    category = 1
    resolves_at_begin = True

    def __init__(self, attr: str, op: Op, value: str):
        self.attr = attr
        self.op = op
        self.value = value

    def __repr__(self):
        return "[@%s%s%s]" % (self.attr, self.op, self.value)


class TextExists(Predicate):
    """``[text()]`` — category 2: the element has non-empty text."""

    category = 2

    def __repr__(self):
        return "[text()]"


class TextCompare(Predicate):
    """``[text() OP c]`` — category 2: some text event satisfies OP.

    Per the Figure 6 template, each text event of the element is tested
    individually; the predicate is true as soon as one passes and false
    only at the element's end event.
    """

    category = 2

    def __init__(self, op: Op, value: str):
        self.op = op
        self.value = value

    def __repr__(self):
        return "[text()%s%s]" % (self.op, self.value)


class ChildExists(Predicate):
    """``[child]`` — category 3: the element has a ``child`` subelement."""

    category = 3

    def __init__(self, child: str):
        self.child = child

    def __repr__(self):
        return "[%s]" % self.child


class ChildAttrExists(Predicate):
    """``[child@attr]`` — category 4: some child carries the attribute."""

    category = 4

    def __init__(self, child: str, attr: str):
        self.child = child
        self.attr = attr

    def __repr__(self):
        return "[%s@%s]" % (self.child, self.attr)


class ChildAttrCompare(Predicate):
    """``[child@attr OP c]`` — category 4 with a value comparison."""

    category = 4

    def __init__(self, child: str, attr: str, op: Op, value: str):
        self.child = child
        self.attr = attr
        self.op = op
        self.value = value

    def __repr__(self):
        return "[%s@%s%s%s]" % (self.child, self.attr, self.op, self.value)


class ChildTextCompare(Predicate):
    """``[child OP c]`` — category 5: some child's text satisfies OP.

    Per the Figure 9 template the test fires on each text event of each
    matching child; false only when the element ends with no child
    having passed.
    """

    category = 5

    def __init__(self, child: str, op: Op, value: str):
        self.child = child
        self.op = op
        self.value = value

    def __repr__(self):
        return "[%s%s%s]" % (self.child, self.op, self.value)


class PathPredicate(Predicate):
    """Base for nested-path predicates (extension beyond Figure 3).

    ``path`` is a tuple of child-axis tag names descending from the
    candidate element; the predicate is exists-quantified over every
    element the path reaches.  These are "category 6": decided by
    events arbitrarily deep inside the element, tracked at runtime by a
    per-activation path tracker.
    """

    category = 6

    def __init__(self, path: Tuple[str, ...]):
        if len(path) < 2:
            raise ValueError("path predicates need at least two steps; "
                             "one-step forms use the Figure 3 categories")
        self.path = tuple(path)

    @property
    def path_text(self) -> str:
        return "/".join(self.path)


class PathExists(PathPredicate):
    """``[a/b]`` — some a-child has a b-child."""

    def __repr__(self):
        return "[%s]" % self.path_text


class PathAttrExists(PathPredicate):
    """``[a/b@attr]`` — a path-reached element carries the attribute."""

    def __init__(self, path: Tuple[str, ...], attr: str):
        super().__init__(path)
        self.attr = attr

    def __repr__(self):
        return "[%s@%s]" % (self.path_text, self.attr)


class PathAttrCompare(PathPredicate):
    """``[a/b@attr OP c]`` — with a value comparison."""

    def __init__(self, path: Tuple[str, ...], attr: str, op: Op, value: str):
        super().__init__(path)
        self.attr = attr
        self.op = op
        self.value = value

    def __repr__(self):
        return "[%s@%s%s%s]" % (self.path_text, self.attr, self.op,
                                self.value)


class PathTextCompare(PathPredicate):
    """``[a/b OP c]`` — some path-reached element's text satisfies OP."""

    def __init__(self, path: Tuple[str, ...], op: Op, value: str):
        super().__init__(path)
        self.op = op
        self.value = value

    def __repr__(self):
        return "[%s%s%s]" % (self.path_text, self.op, self.value)


class NotPredicate(Predicate):
    """``[not(F)]`` — negation of a simple predicate (extension).

    The inner predicate's witness events carry *inverted* meaning: a
    witness falsifies the step immediately, and the element's end event
    — the moment the paper's NA state would fall back to START — now
    confirms it.  Negation composes with every base category (1–6) but
    not with ``or``/``not`` themselves (nested boolean structure would
    need per-branch state the shared NA/TRUE encoding cannot carry).
    """

    def __init__(self, inner: Predicate):
        if isinstance(inner, (OrPredicate, NotPredicate)):
            raise ValueError(
                "not() supports only simple predicates, not %r" % inner)
        self.inner = inner

    @property
    def category(self) -> int:  # type: ignore[override]
        return self.inner.category

    @property
    def resolves_at_begin(self) -> bool:  # type: ignore[override]
        return self.inner.resolves_at_begin

    def __repr__(self):
        return "[not(%s)]" % repr(self.inner)[1:-1]


class OrPredicate(Predicate):
    """``[F or G]`` — disjunction of predicate branches (extension).

    True as soon as any branch is witnessed true; false only when the
    element ends with every branch unwitnessed — the same
    exists-over-events discipline as the base categories, so the NA/
    TRUE machinery carries over unchanged.
    """

    def __init__(self, branches: Tuple[Predicate, ...]):
        if len(branches) < 2:
            raise ValueError("OrPredicate needs at least two branches")
        if any(isinstance(branch, (OrPredicate, NotPredicate))
               for branch in branches):
            raise ValueError(
                "or-branches must be simple predicates (no nested "
                "or/not): a witness for one branch settles the shared "
                "NA/TRUE slot, which negation would invert")
        self.branches = tuple(branches)

    @property
    def category(self) -> int:  # type: ignore[override]
        return max(branch.category for branch in self.branches)

    @property
    def resolves_at_begin(self) -> bool:  # type: ignore[override]
        return all(branch.resolves_at_begin for branch in self.branches)

    def __repr__(self):
        return "[%s]" % " or ".join(repr(b)[1:-1] for b in self.branches)


class Output:
    """Base class for the grammar's output expression ``O``."""

    is_aggregate = False

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class ElementOutput(Output):
    """No output expression: return whole matching elements (catchall)."""

    def __repr__(self):
        return ""


class TextOutput(Output):
    """``text()``: return the text content of matching elements."""

    def __repr__(self):
        return "/text()"


class AttrOutput(Output):
    """``@attr``: return the attribute value of matching elements."""

    def __init__(self, attr: str):
        self.attr = attr

    def __repr__(self):
        return "/@%s" % self.attr


class AggregateOutput(Output):
    """Base for aggregation outputs; :attr:`name` keys the stat buffer."""

    is_aggregate = True
    name = ""

    def __repr__(self):
        return "/%s()" % self.name


class CountOutput(AggregateOutput):
    """``count()``: number of matching elements."""

    name = "count"


class SumOutput(AggregateOutput):
    """``sum()``: sum of the numeric text values of matching elements."""

    name = "sum"


class AvgOutput(AggregateOutput):
    """``avg()`` (extension): mean of the numeric text values."""

    name = "avg"


class MinOutput(AggregateOutput):
    """``min()`` (extension): minimum numeric text value."""

    name = "min"


class MaxOutput(AggregateOutput):
    """``max()`` (extension): maximum numeric text value."""

    name = "max"


class LocationStep:
    """One location step: axis, node test, and zero or more predicates."""

    __slots__ = ("axis", "node_test", "predicates")

    def __init__(self, axis: Axis, node_test: str,
                 predicates: Tuple[Predicate, ...] = ()):
        self.axis = axis
        self.node_test = node_test
        self.predicates = tuple(predicates)

    @property
    def has_predicate(self) -> bool:
        return bool(self.predicates)

    def matches_tag(self, tag: str) -> bool:
        return test_tag(self.node_test, tag)

    def __repr__(self):
        preds = "".join(repr(p) for p in self.predicates)
        return "%s%s%s" % (self.axis, self.node_test, preds)

    def __eq__(self, other):
        return (isinstance(other, LocationStep)
                and self.axis == other.axis
                and self.node_test == other.node_test
                and self.predicates == other.predicates)

    def __hash__(self):
        return hash((self.axis, self.node_test, self.predicates))


class Query:
    """A parsed query: location path plus output expression.

    :attr:`steps` never includes the implicit document root; the HPDT
    builder adds the root BPDT itself (Figure 12).
    """

    __slots__ = ("steps", "output", "text")

    def __init__(self, steps: Tuple[LocationStep, ...], output: Output,
                 text: str = ""):
        self.steps = tuple(steps)
        self.output = output
        self.text = text

    @property
    def has_closure(self) -> bool:
        """True when any step uses the descendant-or-self axis."""
        return any(s.axis is Axis.DESCENDANT for s in self.steps)

    @property
    def predicate_count(self) -> int:
        return sum(len(s.predicates) for s in self.steps)

    def __repr__(self):
        return "Query(%s%s)" % ("".join(repr(s) for s in self.steps),
                                repr(self.output))

    def __eq__(self, other):
        return (isinstance(other, Query) and self.steps == other.steps
                and self.output == other.output)

    def __hash__(self):
        return hash((self.steps, self.output))
