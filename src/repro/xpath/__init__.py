"""XPath subset of Figure 3: lexer, AST, parser, predicate semantics.

The supported language is::

    Q  ::= N+ [ /O ]
    N  ::= ( / | // ) tag [ F ]
    F  ::= [ FO [ OP constant ] ]
    FO ::= @attribute | tag [@attribute] | text()
    O  ::= @attribute | text() | count() | sum()
    OP ::= > | >= | = | < | <= | != | contains

with the documented extensions: ``*`` as a node test, several ``[F]``
predicates on one step (conjunction), and ``avg()``/``min()``/``max()``
aggregation outputs.  Reverse axes and positional predicates raise
:class:`repro.errors.UnsupportedFeatureError`, matching the paper's
stated scope for XSQ.
"""

from repro.xpath.ast import (
    Axis,
    Op,
    Predicate,
    AttrExists,
    AttrCompare,
    TextExists,
    TextCompare,
    ChildExists,
    ChildAttrExists,
    ChildAttrCompare,
    ChildTextCompare,
    LocationStep,
    Output,
    ElementOutput,
    TextOutput,
    AttrOutput,
    AggregateOutput,
    CountOutput,
    SumOutput,
    AvgOutput,
    MinOutput,
    MaxOutput,
    Query,
)
from repro.xpath.parser import parse_query
from repro.xpath.rewrite import rewrite_reverse_axes, supports_reverse_axes
from repro.xpath.tokens import Token, TokenKind, tokenize_query

__all__ = [
    "Axis",
    "Op",
    "Predicate",
    "AttrExists",
    "AttrCompare",
    "TextExists",
    "TextCompare",
    "ChildExists",
    "ChildAttrExists",
    "ChildAttrCompare",
    "ChildTextCompare",
    "LocationStep",
    "Output",
    "ElementOutput",
    "TextOutput",
    "AttrOutput",
    "AggregateOutput",
    "CountOutput",
    "SumOutput",
    "AvgOutput",
    "MinOutput",
    "MaxOutput",
    "Query",
    "parse_query",
    "rewrite_reverse_axes",
    "supports_reverse_axes",
    "Token",
    "TokenKind",
    "tokenize_query",
]
