"""Rewriting reverse axes into forward-only queries.

Section 5 of the paper points at Olteanu et al., *XPath: Looking
Forward*, for evaluating queries with reverse axes on streams: rewrite
them into equivalent forward-only queries first, then run the ordinary
streaming engine.  This module implements the rewrite for the fragment
that maps into the Figure 3 grammar:

* ``parent::r`` (and its ``..`` shorthand) directly after a
  predicate-free child step folds that step into a predicate::

      /pub/book/parent::pub      ->  /pub[book]
      /pub/*/parent::pub[year]   ->  /pub[*][year]
      /a/b/parent::c             ->  provably empty (b's parent is a)

  The parent step's own predicates transfer to the folded-into step,
  and its node test intersects with that step's (incompatible tests
  prove the query empty).

* ``self::r`` intersects node tests in place.

``ancestor::``/``ancestor-or-self::`` need *path* predicates
(``[b/c]``), which the Figure 3 grammar cannot express, so they raise
:class:`UnsupportedFeatureError` with a message saying exactly that —
the same boundary the paper draws for XSQ itself.

Entry point: :func:`rewrite_reverse_axes` takes the extended query text
and returns a forward-only :class:`~repro.xpath.ast.Query`, or ``None``
when the rewrite proves the query can match nothing.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import UnsupportedFeatureError, XPathSyntaxError
from repro.xpath.ast import Query
from repro.xpath.parser import parse_query

#: Splits the query into slash-separated components while keeping the
#: axis of each step ('//' vs '/').  Predicates cannot contain slashes
#: in this grammar, so a textual split is exact.
_STEP_RE = re.compile(r"(//|/)([^/]+)")

_REVERSE_UNSUPPORTED = ("ancestor", "ancestor-or-self", "preceding",
                        "preceding-sibling", "following",
                        "following-sibling")


def rewrite_reverse_axes(query_text: str) -> Optional[Query]:
    """Rewrite ``parent::``/``..``/``self::`` steps away.

    Returns the equivalent forward-only query, or ``None`` when the
    rewrite proves the query empty on every document.

    >>> rewrite_reverse_axes("/pub/book/parent::pub").steps
    (/pub[book],)
    >>> rewrite_reverse_axes("/a/b/parent::c") is None
    True
    >>> rewrite_reverse_axes("/pub/book/text()").text
    '/pub/book/text()'
    """
    components = _split_components(query_text)
    rewritten: List[Tuple[str, str]] = []  # (axis text, step text)
    for axis_text, body in components:
        kind, remainder = _classify(body)
        if kind == "forward":
            rewritten.append((axis_text, body))
            continue
        if kind == "self":
            if not rewritten:
                raise UnsupportedFeatureError(
                    "self:: on the document root is not expressible")
            if axis_text == "//":
                raise UnsupportedFeatureError(
                    "//self:: is not a rewriteable form")
            merged = _merge_self(rewritten[-1], remainder)
            if merged is None:
                return None
            rewritten[-1] = merged
            continue
        # kind == "parent"
        if axis_text == "//":
            raise UnsupportedFeatureError(
                "//parent:: selects unboundedly many ancestors; use "
                "ancestor::, which this fragment cannot express")
        if len(rewritten) < 2:
            # The folded step's parent would be the virtual root, which
            # is not an element: nothing can match.
            return None
        folded_axis, folded_body = rewritten.pop()
        if "[" in folded_body:
            raise UnsupportedFeatureError(
                "parent:: after a predicated step needs nested path "
                "predicates, outside the Figure 3 grammar")
        if folded_axis == "//":
            raise UnsupportedFeatureError(
                "parent:: after a closure step needs path predicates, "
                "outside the Figure 3 grammar")
        merged = _merge_parent(rewritten[-1], folded_body, remainder)
        if merged is None:
            return None
        rewritten[-1] = merged
    if not rewritten:
        raise XPathSyntaxError("query has no location steps",
                               query=query_text)
    text = "".join(axis + body for axis, body in rewritten)
    return parse_query(text)


def _split_components(query_text: str) -> List[Tuple[str, str]]:
    text = query_text.strip()
    if not text.startswith("/"):
        raise XPathSyntaxError("query must start with '/' or '//'",
                               query=query_text)
    components = []
    position = 0
    for match in _STEP_RE.finditer(text):
        if match.start() != position:
            raise XPathSyntaxError("malformed query near %r"
                                   % text[position:position + 10],
                                   query=query_text)
        components.append((match.group(1), match.group(2).strip()))
        position = match.end()
    if position != len(text):
        raise XPathSyntaxError("trailing text %r" % text[position:],
                               query=query_text)
    return components


def _classify(body: str) -> Tuple[str, str]:
    """-> ("forward", body) | ("parent", rest) | ("self", rest).

    ``rest`` for reverse kinds is the node test plus any predicates,
    e.g. ``pub[year]`` from ``parent::pub[year]``.
    """
    if body == "..":
        return ("parent", "*")
    if body.startswith("parent::"):
        return ("parent", body[len("parent::"):])
    if body.startswith("self::"):
        return ("self", body[len("self::"):])
    for axis in _REVERSE_UNSUPPORTED:
        if body.startswith(axis + "::"):
            raise UnsupportedFeatureError(
                "%s:: cannot be rewritten into the Figure 3 grammar "
                "(it needs path predicates); see Olteanu et al., "
                "'XPath: Looking Forward'" % axis)
    return ("forward", body)


def _split_test_preds(step_text: str) -> Tuple[str, str]:
    bracket = step_text.find("[")
    if bracket == -1:
        return step_text, ""
    return step_text[:bracket], step_text[bracket:]


def _intersect_tests(a: str, b: str) -> Optional[str]:
    if a == "*":
        return b
    if b == "*" or a == b:
        return a
    return None  # provably empty


def _merge_self(prev: Tuple[str, str], self_body: str
                ) -> Optional[Tuple[str, str]]:
    prev_axis, prev_body = prev
    prev_test, prev_preds = _split_test_preds(prev_body)
    self_test, self_preds = _split_test_preds(self_body)
    merged_test = _intersect_tests(prev_test, self_test)
    if merged_test is None:
        return None
    return (prev_axis, merged_test + prev_preds + self_preds)


def _merge_parent(prev: Tuple[str, str], folded_body: str,
                  parent_body: str) -> Optional[Tuple[str, str]]:
    """Fold ``prev/folded/parent::parent_body`` into one step.

    ``prev`` must end up matching both its own test and the parent
    step's test, gain a child-existence predicate for the folded step,
    and inherit the parent step's predicates.
    """
    prev_axis, prev_body = prev
    prev_test, prev_preds = _split_test_preds(prev_body)
    parent_test, parent_preds = _split_test_preds(parent_body)
    merged_test = _intersect_tests(prev_test, parent_test)
    if merged_test is None:
        return None
    child_pred = "[%s]" % folded_body
    return (prev_axis, merged_test + prev_preds + child_pred + parent_preds)


def supports_reverse_axes(query_text: str) -> bool:
    """Quick check: does the text use any reverse-axis syntax at all?"""
    return ("parent::" in query_text or "self::" in query_text
            or "/.." in query_text
            or any(axis + "::" in query_text
                   for axis in _REVERSE_UNSUPPORTED))
