"""``python -m repro`` — alias for the ``xsq`` command-line tool."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
