"""``xsq serve``: the asyncio network front-end over the broker.

One TCP listener, JSON-lines protocol, any number of concurrent
subscriber/feeder connections sharing one
:class:`~repro.serve.broker.SubscriptionBroker`.  Every connection can
register standing queries and/or stream documents; results fan out to
whichever connection *owns* each matching subscription the moment they
are determined — the "XSQ as a service" shape the paper's
dissemination framing points at.

Client → server ops (one JSON object per line)::

    {"op": "hello", "tenant": "alice"}      bind this connection's tenant
    {"op": "subscribe", "query": "//a/text()"}
    {"op": "unsubscribe", "sub": "s3"}
    {"op": "open"}                          start a document (optional;
                                            the first chunk auto-opens)
    {"op": "chunk", "data": "<pub><boo"}    any split, no ack (results
                                            are the acknowledgement)
    {"op": "close"}                         end the document, flush tails
    {"op": "stats"}                         registry + connection counters
    {"op": "ping"}

Server → client lines: op acknowledgements ``{"ok": true, "op": ...}``
(or ``{"ok": false, "error": ...}``), and asynchronous events::

    {"event": "result", "sub": "s3", "value": "..."}
    {"event": "dropped", "n": 12}           overflow="drop" only

**Backpressure.**  Each connection owns a bounded outbound queue
drained by a writer task.  With ``overflow="block"`` (default) a full
subscriber queue suspends the *feeding* coroutine — the slow consumer
throttles the producer end to end, classic flow control.  With
``overflow="drop"`` results to a full queue are counted and dropped
(``repro_serve_dropped_total``), and the subscriber is told how many it
lost.  Ops' acknowledgements share the same queue, so a client always
observes its acks ordered against its results.

The server is transport only: all query semantics live in the broker
and the engines' push handles, so everything here is testable without
sockets too (see ``tests/test_serve_push.py``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.errors import ReproError
from repro.serve.broker import DEFAULT_TENANT, SubscriptionBroker

#: Outbound results/acks buffered per connection before backpressure.
DEFAULT_QUEUE_SIZE = 256

#: Refuse protocol lines beyond this size (one op; chunk data included).
MAX_LINE_BYTES = 8 * 1024 * 1024


class _Connection:
    """Per-socket state: tenant, owned subscriptions, outbound queue."""

    def __init__(self, server: "XsqServer", writer: asyncio.StreamWriter,
                 name: str):
        self.server = server
        self.writer = writer
        self.name = name
        self.tenant = DEFAULT_TENANT
        self.owned: set = set()
        self.stream = None
        self.doc_results = 0
        self.results_sent = 0
        self.dropped = 0
        self._closed = False
        self.outbox: asyncio.Queue = asyncio.Queue(
            maxsize=server.queue_size)
        self._writer_task: Optional[asyncio.Task] = None

    def start_writer(self) -> None:
        self._writer_task = asyncio.get_running_loop().create_task(
            self._drain_outbox())

    async def _drain_outbox(self) -> None:
        writer = self.writer
        try:
            while True:
                payload = await self.outbox.get()
                if payload is None:
                    break
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def send(self, message: dict) -> None:
        """Queue one line; blocks (backpressures) when the queue is full."""
        payload = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        if self.server.overflow == "drop" and message.get("event") == "result":
            try:
                self.outbox.put_nowait(payload)
            except asyncio.QueueFull:
                self.dropped += 1
                self.server._count_dropped(self.tenant)
            return
        await self.outbox.put(payload)

    async def flush_drops(self) -> None:
        """Tell the client how many results overflow dropped, then reset."""
        if self.dropped:
            n, self.dropped = self.dropped, 0
            await self.send({"event": "dropped", "n": n})

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer_task is not None:
                await self.outbox.put(None)
                await self._writer_task
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


class XsqServer:
    """The asyncio subscription server; one broker, many connections.

    ``overflow`` is the fan-out policy for slow subscribers:
    ``"block"`` (end-to-end backpressure) or ``"drop"`` (shed + count).
    Pass an existing ``broker`` to share a registry, or let the server
    build one with ``max_subscriptions_per_tenant``/``obs`` applied.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 broker: Optional[SubscriptionBroker] = None, obs=None,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 overflow: str = "block",
                 max_subscriptions_per_tenant: Optional[int] = None):
        if overflow not in ("block", "drop"):
            raise ValueError("overflow must be 'block' or 'drop', not %r"
                             % (overflow,))
        self.host = host
        self.port = port
        self.obs = obs if obs is not None else (
            broker.obs if broker is not None else None)
        self.broker = broker if broker is not None else SubscriptionBroker(
            obs=self.obs,
            max_subscriptions_per_tenant=max_subscriptions_per_tenant)
        self.queue_size = queue_size
        self.overflow = overflow
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[str, _Connection] = {}
        self._owners: Dict[str, _Connection] = {}
        self._handlers: set = set()
        self._conn_seq = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "XsqServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            await conn.close()
        # Let the per-connection handler tasks observe EOF and unwind,
        # so shutdown leaves no pending tasks behind.
        handlers = [t for t in self._handlers if not t.done()]
        for task in handlers:
            task.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        conn = _Connection(self, writer, "c%d" % self._conn_seq)
        conn.tenant = "tenant-%s" % conn.name
        self._connections[conn.name] = conn
        conn.start_writer()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("op must be a JSON object")
                except ValueError as exc:
                    await conn.send({"ok": False,
                                     "error": "bad JSON: %s" % exc})
                    continue
                await self._dispatch(conn, message)
        finally:
            self._disconnect(conn)
            await conn.close()

    def _disconnect(self, conn: _Connection) -> None:
        self._connections.pop(conn.name, None)
        # A connection's standing queries die with it.
        for sid in list(conn.owned):
            self._owners.pop(sid, None)
            self.broker.unsubscribe(sid)
        conn.owned.clear()
        if conn.stream is not None and not conn.stream.closed:
            try:
                conn.stream.finish()
            except ReproError:
                pass
            conn.stream = None

    # -- op dispatch ---------------------------------------------------------

    async def _dispatch(self, conn: _Connection, message: dict) -> None:
        op = message.get("op")
        handler = getattr(self, "_op_%s" % op, None) if isinstance(
            op, str) and not op.startswith("_") else None
        if handler is None:
            await conn.send({"ok": False, "op": op,
                             "error": "unknown op %r" % (op,)})
            return
        try:
            await handler(conn, message)
        except ReproError as exc:
            await conn.send({"ok": False, "op": op,
                             "error": "%s: %s"
                             % (type(exc).__name__, exc)})

    async def _op_hello(self, conn: _Connection, message: dict) -> None:
        tenant = message.get("tenant")
        if tenant:
            conn.tenant = str(tenant)
        await conn.send({"ok": True, "op": "hello", "tenant": conn.tenant,
                         "server": "xsq-serve"})

    async def _op_ping(self, conn: _Connection, message: dict) -> None:
        await conn.send({"ok": True, "op": "ping"})

    async def _op_subscribe(self, conn: _Connection, message: dict) -> None:
        query = message.get("query")
        if not query:
            await conn.send({"ok": False, "op": "subscribe",
                             "error": "subscribe needs 'query'"})
            return
        sid = self.broker.subscribe(str(query), tenant=conn.tenant)
        conn.owned.add(sid)
        self._owners[sid] = conn
        await conn.send({"ok": True, "op": "subscribe", "sub": sid,
                         "query": str(query)})

    async def _op_unsubscribe(self, conn: _Connection,
                              message: dict) -> None:
        sid = message.get("sub")
        sub = self.broker.get(sid) if sid else None
        if sub is not None and sub.tenant != conn.tenant:
            await conn.send({"ok": False, "op": "unsubscribe",
                             "error": "subscription %r belongs to another "
                             "tenant" % (sid,)})
            return
        removed = self.broker.unsubscribe(sid) if sid else False
        if removed:
            conn.owned.discard(sid)
            self._owners.pop(sid, None)
        await conn.send({"ok": True, "op": "unsubscribe", "sub": sid,
                         "removed": removed})

    async def _op_open(self, conn: _Connection, message: dict) -> None:
        if conn.stream is not None and not conn.stream.closed:
            await conn.send({"ok": False, "op": "open",
                             "error": "a document is already open; "
                             "close it first"})
            return
        conn.stream = self.broker.open_stream(tenant=conn.tenant)
        conn.doc_results = 0
        await conn.send({"ok": True, "op": "open",
                         "subscriptions": len(conn.stream.subscription_ids)})

    async def _op_chunk(self, conn: _Connection, message: dict) -> None:
        data = message.get("data")
        if data is None:
            await conn.send({"ok": False, "op": "chunk",
                             "error": "chunk needs 'data'"})
            return
        if conn.stream is None or conn.stream.closed:
            # First chunk auto-opens against the current registry.
            conn.stream = self.broker.open_stream(tenant=conn.tenant)
            conn.doc_results = 0
        conn.doc_results += await self._deliver(conn.stream.feed(data))

    async def _op_close(self, conn: _Connection, message: dict) -> None:
        if conn.stream is None or conn.stream.closed:
            await conn.send({"ok": False, "op": "close",
                             "error": "no open document"})
            return
        stream, conn.stream = conn.stream, None
        # A truncated/malformed tail raises ReproError out of finish();
        # _dispatch turns it into an error reply and the connection
        # (with its subscriptions) stays alive.
        conn.doc_results += await self._deliver(stream.finish())
        await conn.send({"ok": True, "op": "close",
                         "events": stream.events_fed,
                         "results": conn.doc_results})

    async def _op_stats(self, conn: _Connection, message: dict) -> None:
        await conn.send({
            "ok": True, "op": "stats",
            "tenant": conn.tenant,
            "connections": self.connection_count,
            "subscriptions": self.broker.describe(),
        })

    # -- fan-out -------------------------------------------------------------

    async def _deliver(self, results) -> int:
        """Route ``(sid, value)`` pairs to their owning connections."""
        delivered = 0
        for sid, value in results:
            owner = self._owners.get(sid)
            if owner is None:
                continue
            await owner.send({"event": "result", "sub": sid,
                              "value": value})
            owner.results_sent += 1
            delivered += 1
        for sid, _ in results:
            owner = self._owners.get(sid)
            if owner is not None and owner.dropped:
                await owner.flush_drops()
        return delivered

    def _count_dropped(self, tenant: str) -> None:
        if self.obs is None:
            return
        self.obs.metrics.counter(
            "repro_serve_dropped_total",
            "results shed to slow subscribers under overflow='drop'",
            tenant=tenant).inc()


async def serve(host: str = "127.0.0.1", port: int = 0, *,
                obs=None, metrics_port: Optional[int] = None,
                queue_size: int = DEFAULT_QUEUE_SIZE,
                overflow: str = "block",
                max_subscriptions_per_tenant: Optional[int] = None,
                announce=None) -> None:
    """Run the subscription server until cancelled (the CLI entry).

    ``metrics_port`` mounts the bundle's
    :class:`~repro.obs.serve.MetricsServer` (``/metrics``, ``/healthz``,
    ``/snapshot``) next to the subscription listener.  ``announce`` is
    called once with the started :class:`XsqServer` — the CLI prints
    the bound ports from it so scripts can discover an ephemeral port.
    """
    if obs is None and metrics_port is not None:
        from repro.obs import Observability
        obs = Observability(spans=False, events=False)
    server = XsqServer(
        host, port, obs=obs, queue_size=queue_size, overflow=overflow,
        max_subscriptions_per_tenant=max_subscriptions_per_tenant)
    await server.start()
    metrics_server = None
    if metrics_port is not None:
        metrics_server = obs.serve(port=metrics_port, host=host)
    if announce is not None:
        announce(server, metrics_server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
