"""``xsq serve``: the asyncio network front-end over the broker.

One TCP listener, JSON-lines protocol, any number of concurrent
subscriber/feeder connections sharing one
:class:`~repro.serve.broker.SubscriptionBroker`.  Every connection can
register standing queries and/or stream documents; results fan out to
whichever connection *owns* each matching subscription the moment they
are determined — the "XSQ as a service" shape the paper's
dissemination framing points at.

Client → server ops (one JSON object per line)::

    {"op": "hello", "tenant": "alice"}      bind this connection's tenant
    {"op": "subscribe", "query": "//a/text()"}
    {"op": "unsubscribe", "sub": "s3"}
    {"op": "open"}                          start a document (optional;
                                            the first chunk auto-opens)
    {"op": "chunk", "data": "<pub><boo"}    any split, no ack (results
                                            are the acknowledgement)
    {"op": "close"}                         end the document, flush tails
    {"op": "stats"}                         registry + connection counters
                                            (+ delivery-latency summary)
    {"op": "dump"}                          flight-recorder snapshot
    {"op": "ping"}

Server → client lines: op acknowledgements ``{"ok": true, "op": ...}``
(or ``{"ok": false, "error": ...}``), and asynchronous events::

    {"event": "result", "sub": "s3", "value": "..."}
    {"event": "dropped", "n": 12}           overflow="drop" only

**Backpressure.**  Each connection owns a bounded outbound queue
drained by a writer task.  With ``overflow="block"`` (default) a full
subscriber queue suspends the *feeding* coroutine — the slow consumer
throttles the producer end to end, classic flow control.  With
``overflow="drop"`` results to a full queue are counted and dropped
(``repro_serve_dropped_total``), and the subscriber is told how many it
lost.  Ops' acknowledgements share the same queue, so a client always
observes its acks ordered against its results.

**Observability.**  When the broker carries an
:class:`~repro.obs.Observability` bundle, every result's journey is
timed end to end (feed-call entry → parse → emit → dispatch → outbox
enqueue → socket write) into per-subscription delivery-latency
histograms (``repro_serve_delivery_seconds``) and the ``stats`` op's
``delivery`` section.  A :class:`~repro.obs.recorder.FlightRecorder`
(always attached, even without a bundle) keeps the last N structured
events — drops, quota rejections, errors, connection lifecycle — and
dumps a postmortem JSON artifact on unhandled exception, ``SIGUSR2``
(see :func:`serve`), the ``dump`` op, or ``xsq flight-dump``.

The server is transport only: all query semantics live in the broker
and the engines' push handles, so everything here is testable without
sockets too (see ``tests/test_serve_push.py``).
"""

from __future__ import annotations

import asyncio
import json
import sys
import traceback
from typing import Dict, List, Optional

from repro.errors import QuotaExceededError, ReproError
from repro.obs.recorder import FlightRecorder
from repro.serve.broker import DEFAULT_TENANT, SubscriptionBroker

#: Outbound results/acks buffered per connection before backpressure.
DEFAULT_QUEUE_SIZE = 256

#: Refuse protocol lines beyond this size (one op; chunk data included).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Seconds between periodic drop-report flushes under overflow="drop".
DEFAULT_DROP_FLUSH_INTERVAL = 0.25


class _Connection:
    """Per-socket state: tenant, owned subscriptions, outbound queue."""

    def __init__(self, server: "XsqServer", writer: asyncio.StreamWriter,
                 name: str):
        self.server = server
        self.writer = writer
        self.name = name
        self.tenant = DEFAULT_TENANT
        self.owned: set = set()
        self.stream = None
        self.doc_results = 0
        self.results_sent = 0
        self.dropped = 0
        self._closed = False
        self.outbox: asyncio.Queue = asyncio.Queue(
            maxsize=server.queue_size)
        self._writer_task: Optional[asyncio.Task] = None

    def start_writer(self) -> None:
        self._writer_task = asyncio.get_running_loop().create_task(
            self._drain_outbox())

    async def _drain_outbox(self) -> None:
        writer = self.writer
        delivery = self.server.delivery
        try:
            while True:
                item = await self.outbox.get()
                if item is None:
                    break
                payload, timing = item
                writer.write(payload)
                await writer.drain()
                if timing is not None:
                    timing.write = delivery.clock()
                    delivery.complete(timing)
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def send(self, message: dict, timing=None) -> None:
        """Queue one line; blocks (backpressures) when the queue is full.

        ``timing`` is the result's provenance record (when delivery
        latency is being tracked): the outbox-enqueue timestamp lands
        here, the socket-write timestamp in the drain task.  Dropped
        results discard their timing — they never complete delivery.
        """
        payload = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        if self.server.overflow == "drop" and message.get("event") == "result":
            try:
                self.outbox.put_nowait((payload, timing))
            except asyncio.QueueFull:
                self.dropped += 1
                self.server._count_dropped(self.tenant)
                return
            if timing is not None:
                timing.enqueue = self.server.delivery.clock()
            return
        await self.outbox.put((payload, timing))
        if timing is not None:
            timing.enqueue = self.server.delivery.clock()

    def take_dropped(self) -> int:
        """Atomically claim the pending drop count.

        Single-statement swap with no await point between read and
        reset, so a ``send`` racing on the same loop iteration can only
        land increments *after* the claim (they stay pending for the
        next flush) — none are lost and none double-report.
        """
        n, self.dropped = self.dropped, 0
        return n

    @staticmethod
    def _drop_notice(n: int) -> bytes:
        return (json.dumps({"event": "dropped", "n": n},
                           separators=(",", ":")) + "\n").encode()

    async def flush_drops(self) -> None:
        """Tell the client how many results overflow dropped, then reset.

        Blocking variant (awaits queue space): used at document close so
        the loss report is ordered before the close acknowledgement.
        """
        n = self.take_dropped()
        if n:
            await self.outbox.put((self._drop_notice(n), None))
            self.server._record_drop_report(self, n)

    def flush_drops_nowait(self) -> bool:
        """Best-effort drop report: never blocks the feeding coroutine.

        If the outbox is still full the claimed count is restored for a
        later flush (the periodic flusher retries), so reports are
        prompt when possible and conserved when not.
        """
        n = self.take_dropped()
        if not n:
            return False
        try:
            self.outbox.put_nowait((self._drop_notice(n), None))
        except asyncio.QueueFull:
            self.dropped += n
            return False
        self.server._record_drop_report(self, n)
        return True

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer_task is not None:
                await self.outbox.put(None)
                await self._writer_task
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


class XsqServer:
    """The asyncio subscription server; one broker, many connections.

    ``overflow`` is the fan-out policy for slow subscribers:
    ``"block"`` (end-to-end backpressure) or ``"drop"`` (shed + count).
    Pass an existing ``broker`` to share a registry, or let the server
    build one with ``max_subscriptions_per_tenant``/``obs`` applied.

    ``flight`` is the flight recorder (``None`` builds a default one,
    an int sets its capacity, an instance is shared); ``flight_dir``
    enables crash artifacts — an unhandled op exception dumps the ring
    there.  ``drop_flush_interval`` paces the periodic drop-report
    flusher under ``overflow="drop"``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 broker: Optional[SubscriptionBroker] = None, obs=None,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 overflow: str = "block",
                 max_subscriptions_per_tenant: Optional[int] = None,
                 flight=None, flight_dir: Optional[str] = None,
                 drop_flush_interval: float = DEFAULT_DROP_FLUSH_INTERVAL):
        if overflow not in ("block", "drop"):
            raise ValueError("overflow must be 'block' or 'drop', not %r"
                             % (overflow,))
        self.host = host
        self.port = port
        self.obs = obs if obs is not None else (
            broker.obs if broker is not None else None)
        self.broker = broker if broker is not None else SubscriptionBroker(
            obs=self.obs,
            max_subscriptions_per_tenant=max_subscriptions_per_tenant)
        #: Per-result delivery-latency tracker (None without a bundle).
        self.delivery = self.broker.delivery
        if flight is None and self.obs is not None:
            flight = getattr(self.obs, "flight", None)
        if flight is None:
            flight = FlightRecorder()
        elif isinstance(flight, int):
            flight = FlightRecorder(capacity=flight)
        self.flight: FlightRecorder = flight
        self.flight_dir = flight_dir
        self.queue_size = queue_size
        self.overflow = overflow
        self.drop_flush_interval = drop_flush_interval
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[str, _Connection] = {}
        self._owners: Dict[str, _Connection] = {}
        self._handlers: set = set()
        self._flusher: Optional[asyncio.Task] = None
        self._conn_seq = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "XsqServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.overflow == "drop" and self.drop_flush_interval > 0:
            self._flusher = asyncio.get_running_loop().create_task(
                self._drop_flusher())
        return self

    async def _drop_flusher(self) -> None:
        """Periodically report accumulated drops to their victims.

        Safety net behind the per-feed flush: a subscriber whose queue
        stayed full at feed time (nowait flush deferred) still learns
        about its losses within ``drop_flush_interval`` seconds.
        """
        try:
            while True:
                await asyncio.sleep(self.drop_flush_interval)
                self.flush_drops_all()
        except asyncio.CancelledError:
            pass

    def flush_drops_all(self) -> int:
        """Nowait drop-report flush across every connection."""
        flushed = 0
        for conn in list(self._connections.values()):
            if conn.dropped and conn.flush_drops_nowait():
                flushed += 1
        return flushed

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            await conn.close()
        # Let the per-connection handler tasks observe EOF and unwind,
        # so shutdown leaves no pending tasks behind.
        handlers = [t for t in self._handlers if not t.done()]
        for task in handlers:
            task.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        conn = _Connection(self, writer, "c%d" % self._conn_seq)
        conn.tenant = "tenant-%s" % conn.name
        self._connections[conn.name] = conn
        self.flight.record("connect", conn=conn.name)
        conn.start_writer()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("op must be a JSON object")
                except ValueError as exc:
                    await conn.send({"ok": False,
                                     "error": "bad JSON: %s" % exc})
                    continue
                await self._dispatch(conn, message)
        finally:
            self._disconnect(conn)
            await conn.close()

    def _disconnect(self, conn: _Connection) -> None:
        self._connections.pop(conn.name, None)
        self.flight.record("disconnect", conn=conn.name,
                           tenant=conn.tenant,
                           results_sent=conn.results_sent,
                           dropped=conn.dropped)
        # A connection's standing queries die with it.
        for sid in list(conn.owned):
            self._owners.pop(sid, None)
            self.broker.unsubscribe(sid)
        conn.owned.clear()
        if conn.stream is not None and not conn.stream.closed:
            try:
                conn.stream.finish()
            except ReproError:
                pass
            conn.stream = None

    # -- op dispatch ---------------------------------------------------------

    async def _dispatch(self, conn: _Connection, message: dict) -> None:
        op = message.get("op")
        handler = getattr(self, "_op_%s" % op, None) if isinstance(
            op, str) and not op.startswith("_") else None
        if handler is None:
            await conn.send({"ok": False, "op": op,
                             "error": "unknown op %r" % (op,)})
            return
        try:
            await handler(conn, message)
        except ReproError as exc:
            if isinstance(exc, QuotaExceededError):
                self.flight.record("quota", conn=conn.name, op=op,
                                   tenant=exc.tenant, quota=exc.quota)
            else:
                self.flight.record("error", conn=conn.name, op=op,
                                   error="%s: %s"
                                   % (type(exc).__name__, exc))
            await conn.send({"ok": False, "op": op,
                             "error": "%s: %s"
                             % (type(exc).__name__, exc)})
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:
            # An unexpected bug must yield a postmortem artifact, not a
            # silently killed connection: record it, dump the ring when
            # a flight_dir is configured, and keep serving.
            self.flight.record("crash", conn=conn.name, op=op,
                               error="%s: %s" % (type(exc).__name__, exc),
                               traceback=traceback.format_exc())
            if self.flight_dir is not None:
                try:
                    path = self.flight.dump(dir=self.flight_dir,
                                            reason="crash")
                    print("xsq serve: unhandled error in op %r; flight "
                          "recorder dumped to %s" % (op, path),
                          file=sys.stderr)
                except OSError:
                    pass
            await conn.send({"ok": False, "op": op,
                             "error": "internal error: %s: %s"
                             % (type(exc).__name__, exc)})

    async def _op_hello(self, conn: _Connection, message: dict) -> None:
        tenant = message.get("tenant")
        if tenant:
            conn.tenant = str(tenant)
        await conn.send({"ok": True, "op": "hello", "tenant": conn.tenant,
                         "server": "xsq-serve"})

    async def _op_ping(self, conn: _Connection, message: dict) -> None:
        await conn.send({"ok": True, "op": "ping"})

    async def _op_subscribe(self, conn: _Connection, message: dict) -> None:
        query = message.get("query")
        if not query:
            await conn.send({"ok": False, "op": "subscribe",
                             "error": "subscribe needs 'query'"})
            return
        sid = self.broker.subscribe(str(query), tenant=conn.tenant)
        conn.owned.add(sid)
        self._owners[sid] = conn
        await conn.send({"ok": True, "op": "subscribe", "sub": sid,
                         "query": str(query)})

    async def _op_unsubscribe(self, conn: _Connection,
                              message: dict) -> None:
        sid = message.get("sub")
        sub = self.broker.get(sid) if sid else None
        if sub is not None and sub.tenant != conn.tenant:
            await conn.send({"ok": False, "op": "unsubscribe",
                             "error": "subscription %r belongs to another "
                             "tenant" % (sid,)})
            return
        removed = self.broker.unsubscribe(sid) if sid else False
        if removed:
            conn.owned.discard(sid)
            self._owners.pop(sid, None)
        await conn.send({"ok": True, "op": "unsubscribe", "sub": sid,
                         "removed": removed})

    async def _op_open(self, conn: _Connection, message: dict) -> None:
        if conn.stream is not None and not conn.stream.closed:
            await conn.send({"ok": False, "op": "open",
                             "error": "a document is already open; "
                             "close it first"})
            return
        conn.stream = self.broker.open_stream(tenant=conn.tenant)
        conn.doc_results = 0
        await conn.send({"ok": True, "op": "open",
                         "subscriptions": len(conn.stream.subscription_ids)})

    async def _op_chunk(self, conn: _Connection, message: dict) -> None:
        data = message.get("data")
        if data is None:
            await conn.send({"ok": False, "op": "chunk",
                             "error": "chunk needs 'data'"})
            return
        if conn.stream is None or conn.stream.closed:
            # First chunk auto-opens against the current registry.
            conn.stream = self.broker.open_stream(tenant=conn.tenant)
            conn.doc_results = 0
        results = conn.stream.feed(data)
        conn.doc_results += await self._deliver(
            results, conn.stream.take_timings())
        # Prompt loss reporting: tell every victim about accumulated
        # drops at each feed boundary (nowait — a still-full queue
        # defers to the periodic flusher rather than stalling the
        # feeder).
        if self.overflow == "drop":
            self.flush_drops_all()

    async def _op_close(self, conn: _Connection, message: dict) -> None:
        if conn.stream is None or conn.stream.closed:
            await conn.send({"ok": False, "op": "close",
                             "error": "no open document"})
            return
        stream, conn.stream = conn.stream, None
        # A truncated/malformed tail raises ReproError out of finish();
        # _dispatch turns it into an error reply and the connection
        # (with its subscriptions) stays alive.
        results = stream.finish()
        conn.doc_results += await self._deliver(
            results, stream.take_timings())
        if self.overflow == "drop":
            # Blocking flush at document end: every loss report is
            # ordered ahead of whatever the victims see next.
            for other in list(self._connections.values()):
                if other.dropped:
                    await other.flush_drops()
        self.flight.record("document", conn=conn.name, tenant=conn.tenant,
                           events=stream.events_fed,
                           results=conn.doc_results)
        await conn.send({"ok": True, "op": "close",
                         "events": stream.events_fed,
                         "results": conn.doc_results})

    async def _op_stats(self, conn: _Connection, message: dict) -> None:
        payload = {
            "ok": True, "op": "stats",
            "tenant": conn.tenant,
            "connections": self.connection_count,
            "subscriptions": self.broker.describe(),
            "flight": {"recorded": self.flight.recorded,
                       "capacity": self.flight.capacity},
        }
        if self.delivery is not None:
            payload["delivery"] = self.delivery.snapshot()
        await conn.send(payload)

    async def _op_dump(self, conn: _Connection, message: dict) -> None:
        """The flight recorder's ring, as one JSON reply."""
        await conn.send({"ok": True, "op": "dump",
                         "flight": self.flight.snapshot(reason="dump-op")})

    # -- fan-out -------------------------------------------------------------

    async def _deliver(self, results, timings=None) -> int:
        """Route ``(sid, value)`` pairs to their owning connections.

        ``timings`` (when delivery latency is tracked) aligns 1:1 with
        ``results``: each record gets its dispatch stamp here and rides
        the outbox to collect enqueue/write stamps.
        """
        delivered = 0
        delivery = self.delivery
        if timings is not None and len(timings) != len(results):
            timings = None
        for index, (sid, value) in enumerate(results):
            owner = self._owners.get(sid)
            if owner is None:
                continue
            timing = timings[index] if timings is not None else None
            if timing is not None:
                timing.dispatch = delivery.clock()
            await owner.send({"event": "result", "sub": sid,
                              "value": value}, timing)
            owner.results_sent += 1
            delivered += 1
        return delivered

    def _count_dropped(self, tenant: str) -> None:
        if self.obs is None:
            return
        self.obs.metrics.counter(
            "repro_serve_dropped_total",
            "results shed to slow subscribers under overflow='drop'",
            tenant=tenant).inc()

    def _record_drop_report(self, conn: _Connection, n: int) -> None:
        self.flight.record("drop", conn=conn.name, tenant=conn.tenant,
                           n=n)


async def serve(host: str = "127.0.0.1", port: int = 0, *,
                obs=None, metrics_port: Optional[int] = None,
                queue_size: int = DEFAULT_QUEUE_SIZE,
                overflow: str = "block",
                max_subscriptions_per_tenant: Optional[int] = None,
                flight_dir: Optional[str] = None,
                announce=None) -> None:
    """Run the subscription server until cancelled (the CLI entry).

    ``metrics_port`` mounts the bundle's
    :class:`~repro.obs.serve.MetricsServer` (``/metrics``, ``/healthz``,
    ``/snapshot``, ``/flight``) next to the subscription listener.
    ``flight_dir`` is where flight-recorder artifacts land (crash dumps
    and ``SIGUSR2`` dumps — the signal handler is installed on loops
    that support it).  ``announce`` is called once with the started
    :class:`XsqServer` — the CLI prints the bound ports from it so
    scripts can discover an ephemeral port.
    """
    if obs is None and metrics_port is not None:
        from repro.obs import Observability
        obs = Observability(spans=False, events=False, recorder=True)
    server = XsqServer(
        host, port, obs=obs, queue_size=queue_size, overflow=overflow,
        max_subscriptions_per_tenant=max_subscriptions_per_tenant,
        flight_dir=flight_dir)
    await server.start()
    _install_sigusr2_dump(server)
    metrics_server = None
    if metrics_port is not None:
        metrics_server = obs.serve(port=metrics_port, host=host)
    if announce is not None:
        announce(server, metrics_server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def _install_sigusr2_dump(server: XsqServer) -> None:
    """``kill -USR2 <pid>`` dumps the flight recorder to disk."""
    import signal

    if not hasattr(signal, "SIGUSR2"):
        return

    def dump():
        try:
            path = server.flight.dump(dir=server.flight_dir or ".",
                                      reason="sigusr2")
            print("xsq serve: flight recorder dumped to %s" % path,
                  file=sys.stderr)
        except OSError as exc:
            print("xsq serve: flight dump failed: %s" % exc,
                  file=sys.stderr)

    try:
        asyncio.get_running_loop().add_signal_handler(signal.SIGUSR2, dump)
    except (NotImplementedError, RuntimeError, ValueError):
        pass
