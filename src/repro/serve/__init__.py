"""XSQ as a service: persistent subscriptions over streaming documents.

The paper positions streaming XPath as the matching core of a data
*dissemination* service — many standing queries, documents arriving as
byte streams, results pushed to subscribers as soon as the buffering
discipline determines them.  This package is that service, in two
transport-independent layers:

* :class:`SubscriptionBroker` / :class:`BrokerStream`
  (:mod:`repro.serve.broker`) — the synchronous core: a hot
  subscribe/unsubscribe registry with per-tenant quotas and metrics,
  compiling all standing queries into one shared-dispatch grouped
  engine, evaluated incrementally per document through the engines'
  push handles.
* :class:`XsqServer` / :func:`serve` (:mod:`repro.serve.server`) — the
  asyncio JSON-lines front-end behind ``xsq serve``: per-connection
  tenants, result fan-out to each subscription's owner, bounded
  outbound queues with block-or-drop overflow, and an optional
  ``/metrics`` endpoint.
"""

from repro.serve.broker import (
    DEFAULT_TENANT,
    BrokerStream,
    Subscription,
    SubscriptionBroker,
)
from repro.serve.server import DEFAULT_QUEUE_SIZE, XsqServer, serve

__all__ = [
    "SubscriptionBroker",
    "BrokerStream",
    "Subscription",
    "XsqServer",
    "serve",
    "DEFAULT_TENANT",
    "DEFAULT_QUEUE_SIZE",
]
