"""The subscription registry and fan-out core of ``xsq serve``.

The paper frames XSQ as a building block for *data dissemination*: many
standing queries, one pass over each arriving document.
:class:`SubscriptionBroker` is that shape as a long-lived service core,
independent of any transport:

* **persistent queries** — ``subscribe()`` / ``unsubscribe()`` register
  XPath subscriptions hot, per tenant, against configurable quotas.
  Compiled HPDTs are shared through the process compile cache, and the
  grouped engine (one shared
  :class:`~repro.xsq.dispatch.DispatchIndex`) is rebuilt lazily, only
  when the registry actually changed.
* **incremental documents** — :meth:`open_stream` starts one document;
  the returned :class:`BrokerStream` accepts raw chunks (``feed``) and
  returns ``(subscription_id, value)`` results the moment the paper's
  buffering discipline determines them — no EOF needed.
* **registry snapshots** — a stream binds the registry at open time;
  subscriptions added mid-document take effect from the next document,
  so every document is evaluated against one consistent query set.

Per-tenant accounting flows into an optional
:class:`~repro.obs.Observability` bundle as ``repro_serve_*`` metrics
(subscriptions gauge, results/documents/chunks/bytes counters, all
labelled by tenant), scrapeable through the bundle's ``/metrics``
endpoint.  The asyncio front-end in :mod:`repro.serve.server` wraps
this class; it is equally usable in-process::

    broker = SubscriptionBroker()
    sid = broker.subscribe("//book[price<11]/title/text()")
    stream = broker.open_stream()
    for chunk in chunks:
        for sub_id, value in stream.feed(chunk):
            deliver(sub_id, value)
    stream.finish()
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import QuotaExceededError, StreamError

DEFAULT_TENANT = "default"


class Subscription:
    """One registered standing query."""

    __slots__ = ("sid", "text", "tenant", "results", "documents")

    def __init__(self, sid: str, text: str, tenant: str):
        self.sid = sid
        self.text = text
        self.tenant = tenant
        self.results = 0
        self.documents = 0

    def as_dict(self) -> dict:
        return {"sub": self.sid, "query": self.text, "tenant": self.tenant,
                "results": self.results, "documents": self.documents}


class SubscriptionBroker:
    """Hot-swappable registry of standing queries + per-document streams.

    ``max_subscriptions_per_tenant`` bounds each tenant's standing
    queries (:class:`~repro.errors.QuotaExceededError` beyond it);
    ``obs`` attaches an :class:`~repro.obs.Observability` bundle for
    the ``repro_serve_*`` metrics.  Thread-safe: registry mutations and
    engine rebuilds are locked; each :class:`BrokerStream` is owned by
    its caller (feed one stream from one thread at a time).
    """

    def __init__(self, obs=None, *,
                 max_subscriptions_per_tenant: Optional[int] = None,
                 cache=None):
        self.obs = obs
        #: End-to-end delivery latency tracker; streams opened from this
        #: broker stamp per-result provenance records against it.  Off
        #: (``None``) when no bundle is attached — the handles then keep
        #: ``latency = None`` and the stamp sites cost one None test.
        self.delivery = obs.enable_delivery() if obs is not None else None
        self.max_subscriptions_per_tenant = max_subscriptions_per_tenant
        self._cache = cache
        self._lock = threading.Lock()
        self._subs: Dict[str, Subscription] = {}
        self._by_tenant: Dict[str, int] = {}
        self._ids = itertools.count(1)
        self._generation = 0
        # (generation, [sid...], MultiQueryEngine|None) of the last build.
        self._compiled: Optional[Tuple[int, List[str], object]] = None

    # -- registry ----------------------------------------------------------

    def subscribe(self, query: str, tenant: str = DEFAULT_TENANT) -> str:
        """Register a standing query; returns its subscription id.

        The query is parsed eagerly so syntax errors surface here, not
        on the first document.  Takes effect for streams opened after
        this call.
        """
        from repro.xpath.parser import parse_query
        parsed = parse_query(query)
        with self._lock:
            quota = self.max_subscriptions_per_tenant
            held = self._by_tenant.get(tenant, 0)
            if quota is not None and held >= quota:
                raise QuotaExceededError(
                    "tenant %r already holds %d subscriptions "
                    "(quota %d)" % (tenant, held, quota),
                    tenant=tenant, quota=quota)
            sid = "s%d" % next(self._ids)
            self._subs[sid] = Subscription(sid, parsed.text or query, tenant)
            self._by_tenant[tenant] = held + 1
            self._generation += 1
        self._gauge_subscriptions(tenant)
        return sid

    def unsubscribe(self, sid: str) -> bool:
        """Remove a standing query; returns whether it existed.

        Streams already opened keep evaluating their snapshot; the
        subscription stops matching from the next document.
        """
        with self._lock:
            sub = self._subs.pop(sid, None)
            if sub is None:
                return False
            self._by_tenant[sub.tenant] -= 1
            self._generation += 1
        self._gauge_subscriptions(sub.tenant)
        return True

    def get(self, sid: str) -> Optional[Subscription]:
        return self._subs.get(sid)

    @property
    def subscription_count(self) -> int:
        return len(self._subs)

    def describe(self) -> List[dict]:
        """Registry snapshot for the server's ``stats`` op."""
        with self._lock:
            return [sub.as_dict() for sub in self._subs.values()]

    # -- evaluation --------------------------------------------------------

    def _snapshot_engine(self):
        """The grouped engine over the current registry, rebuilt only
        when the registry's generation moved."""
        with self._lock:
            generation = self._generation
            if self._compiled is not None and \
                    self._compiled[0] == generation:
                return self._compiled[1], self._compiled[2]
            sids = list(self._subs)
            if sids:
                from repro.xsq.multiquery import MultiQueryEngine
                engine = MultiQueryEngine(
                    [self._subs[sid].text for sid in sids],
                    cache=self._cache)
            else:
                engine = None
            self._compiled = (generation, sids, engine)
            return sids, engine

    def open_stream(self, tenant: str = DEFAULT_TENANT) -> "BrokerStream":
        """Start one document against the current registry snapshot."""
        sids, engine = self._snapshot_engine()
        return BrokerStream(self, sids, engine, tenant)

    # -- metrics -----------------------------------------------------------

    def _gauge_subscriptions(self, tenant: str) -> None:
        if self.obs is None:
            return
        self.obs.metrics.gauge(
            "repro_serve_subscriptions",
            "standing queries currently registered, by tenant",
            tenant=tenant).set(self._by_tenant.get(tenant, 0))

    def _count(self, name: str, help: str, tenant: str, n: int = 1) -> None:
        if self.obs is None or n == 0:
            return
        self.obs.metrics.counter(name, help, tenant=tenant).inc(n)


class BrokerStream:
    """One document fed incrementally through every registered query.

    Results are ``(subscription_id, value)`` pairs, returned from the
    ``feed`` call whose bytes determined them.  ``finish()`` flushes
    the engines' buffer discipline and closes the stream.  When the
    registry snapshot was empty, chunks are still parsed (a malformed
    document errors identically with or without subscribers).
    """

    def __init__(self, broker: SubscriptionBroker, sids: List[str],
                 engine, tenant: str):
        self._broker = broker
        self._sids = sids
        self._tenant = tenant
        self._bytes = 0
        self._chunks = 0
        self.closed = False
        from repro.streaming.push import PushEventParser
        self._parser = PushEventParser()
        self._handle = engine.push() if engine is not None else None
        delivery = broker.delivery
        self._latency = (delivery.recorder()
                         if delivery is not None and self._handle is not None
                         else None)
        if self._latency is not None:
            self._handle.latency = self._latency

    @property
    def subscription_ids(self) -> List[str]:
        """The registry snapshot this stream evaluates."""
        return list(self._sids)

    def _route(self, pairs) -> List[Tuple[str, str]]:
        if not pairs:
            return []
        sids = self._sids
        subs = self._broker._subs
        out = []
        per_tenant: Dict[str, int] = {}
        for index, value in pairs:
            sid = sids[index]
            out.append((sid, value))
            sub = subs.get(sid)
            if sub is not None:
                sub.results += 1
                per_tenant[sub.tenant] = per_tenant.get(sub.tenant, 0) + 1
        for tenant, n in per_tenant.items():
            self._broker._count(
                "repro_serve_results_total",
                "subscription results delivered, by owning tenant",
                tenant, n)
        return out

    def _label_timings(self, routed: List[Tuple[str, str]]) -> None:
        """Stamp subscription/tenant onto the timings this feed emitted.

        The push handle appended exactly ``len(routed)`` provenance
        records to the recorder, in the same order ``_route`` mapped
        them — so a positional zip over the pending tail labels 1:1.
        """
        timings = self._latency.pending[-len(routed):]
        subs = self._broker._subs
        for (sid, _value), timing in zip(routed, timings):
            timing.sub = sid
            sub = subs.get(sid)
            timing.tenant = sub.tenant if sub is not None else self._tenant

    def take_timings(self):
        """Claim the provenance records emitted since the last take."""
        return self._latency.take() if self._latency is not None else []

    def feed(self, chunk) -> List[Tuple[str, str]]:
        """Parse one raw chunk; return newly determined results."""
        if self.closed:
            raise StreamError("stream already finished")
        self._chunks += 1
        self._bytes += len(chunk)
        recorder = self._latency
        if recorder is not None:
            recorder.start_feed()
        events = self._parser.feed(chunk)
        if recorder is not None:
            recorder.mark_batch()
        if self._handle is None:
            return []
        out = self._route(self._handle.feed_events(events))
        if recorder is not None and out:
            self._label_timings(out)
        return out

    def finish(self) -> List[Tuple[str, str]]:
        """End the document; return tail results and record accounting."""
        if self.closed:
            return []
        self.closed = True
        recorder = self._latency
        if recorder is not None:
            recorder.start_feed()
        events = self._parser.finish()
        if recorder is not None:
            recorder.mark_batch()
        out: List[Tuple[str, str]] = []
        if self._handle is not None:
            out = self._route(self._handle.feed_events(events)
                              + self._handle.finish())
            if recorder is not None and out:
                self._label_timings(out)
        broker = self._broker
        for sid in self._sids:
            sub = broker._subs.get(sid)
            if sub is not None:
                sub.documents += 1
        broker._count("repro_serve_documents_total",
                      "documents streamed to completion, by feeding tenant",
                      self._tenant)
        broker._count("repro_serve_chunks_total",
                      "raw chunks fed, by feeding tenant",
                      self._tenant, self._chunks)
        broker._count("repro_serve_bytes_total",
                      "raw bytes fed, by feeding tenant",
                      self._tenant, self._bytes)
        return out

    @property
    def events_fed(self) -> int:
        return self._handle.events_fed if self._handle is not None else 0
