"""Result serialization: plain lines, wrapped XML, or JSON.

Section 6.1 notes that different systems "enclose the results by
different container elements but the contents are the same"; this
module is the reproduction's uniform result envelope.  Writers are
incremental so the CLI can emit results as the engine streams them —
the whole point of a streaming processor.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional

from repro.streaming.serialize import escape_text

FORMATS = ("plain", "xml", "json")


class ResultWriter:
    """Incremental writer for one result stream.

    ``format``:

    * ``plain`` — one result value per line (the default CLI output);
    * ``xml`` — an ``<xsq:results>`` envelope with one ``<xsq:result>``
      per value (element-output values are embedded as markup, scalar
      values as escaped text);
    * ``json`` — a JSON array, streamed element by element.

    Use as a context manager or call :meth:`close` explicitly; the
    envelope's closing syntax is emitted at close time.
    """

    def __init__(self, stream: IO, format: str = "plain",
                 wrapper: str = "xsq:results", item: str = "xsq:result",
                 values_are_markup: bool = False):
        if format not in FORMATS:
            raise ValueError("unknown format %r (expected one of %s)"
                             % (format, ", ".join(FORMATS)))
        self.stream = stream
        self.format = format
        self.wrapper = wrapper
        self.item = item
        self.values_are_markup = values_are_markup
        self.count = 0
        self._closed = False
        if format == "xml":
            stream.write("<%s>\n" % wrapper)
        elif format == "json":
            stream.write("[")

    def write(self, value: str) -> None:
        if self._closed:
            raise ValueError("writer already closed")
        if self.format == "plain":
            self.stream.write(value + "\n")
        elif self.format == "xml":
            body = value if self.values_are_markup else escape_text(value)
            self.stream.write("  <%s>%s</%s>\n" % (self.item, body,
                                                   self.item))
        else:
            prefix = ",\n " if self.count else "\n "
            self.stream.write(prefix + json.dumps(value))
        self.count += 1

    def write_all(self, values: Iterable[str]) -> int:
        for value in values:
            self.write(value)
        return self.count

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.format == "xml":
            self.stream.write("</%s>\n" % self.wrapper)
        elif self.format == "json":
            self.stream.write("\n]\n" if self.count else "]\n")

    def __enter__(self) -> "ResultWriter":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None


def format_results(values: Iterable[str], format: str = "plain",
                   values_are_markup: bool = False) -> str:
    """One-shot convenience over :class:`ResultWriter`.

    >>> print(format_results(["a", "b"], "xml"), end="")
    <xsq:results>
      <xsq:result>a</xsq:result>
      <xsq:result>b</xsq:result>
    </xsq:results>
    >>> format_results(["x"], "json")
    '[\\n "x"\\n]\\n'
    """
    import io
    buffer = io.StringIO()
    with ResultWriter(buffer, format,
                      values_are_markup=values_are_markup) as writer:
        writer.write_all(values)
    return buffer.getvalue()
