"""Setuptools shim.

``pip install -e .`` needs the ``wheel`` package for PEP 517 editable
builds; on fully offline machines without it, ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation``) achieves the
same editable install through this shim.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
